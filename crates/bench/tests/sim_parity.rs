//! Behavior pin for the rewritten per-task event loop.
//!
//! `seed_ref` is a faithful replica of the pre-optimization runner: the
//! on-air list is a `Vec` that is never pruned and rescanned in full for
//! every collision check, audibility is the exact `dist ≤ rr` comparison,
//! pending destinations live in a `HashSet`, deliveries insert straight
//! into the report's `BTreeMap`s, the power-control listener count is an
//! O(degree) distance filter, and every forwarding decision collects into
//! a fresh `Vec`. The optimized runner replaces all of that machinery —
//! expiry-ordered pruning heap, neighbor-set audibility fast path, indexed
//! pending bitmap, deferred map folds, one reused forward buffer — and
//! none of it may change a single simulated outcome: the [`TaskReport`]s
//! must be bit-identical on every protocol, configuration, and seed.

use gmp_baselines::{DsmRouter, GrdRouter, LgkRouter, LgsRouter, PbmRouter, SmtRouter};
use gmp_core::GmpRouter;
use gmp_net::Topology;
use gmp_sim::{MulticastTask, Protocol, SimConfig, SimScratch, TaskReport, TaskRunner};

mod seed_ref {
    use std::collections::HashSet;

    use gmp_net::{NodeId, Topology};
    use gmp_sim::config::SimConfig;
    use gmp_sim::energy::EnergyModel;
    use gmp_sim::event::{Event, EventQueue};
    use gmp_sim::metrics::TaskReport;
    use gmp_sim::packet::MulticastPacket;
    use gmp_sim::protocol::{Forward, NodeContext, Protocol};
    use gmp_sim::task::MulticastTask;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    pub struct TaskRunner<'a> {
        topo: &'a Topology,
        config: &'a SimConfig,
    }

    impl<'a> TaskRunner<'a> {
        pub fn new(topo: &'a Topology, config: &'a SimConfig) -> Self {
            TaskRunner { topo, config }
        }

        pub fn run_seeded(
            &self,
            protocol: &mut dyn Protocol,
            task: &MulticastTask,
            seed: u64,
        ) -> TaskReport {
            let mut report = TaskReport::new(protocol.name());
            let energy = EnergyModel::from_config(self.config);
            let positions = self.topo.positions();
            let mut rng = StdRng::seed_from_u64(seed);

            let mut alive = vec![true; self.topo.len()];
            if self.config.faults.node_failure_prob > 0.0 {
                for (i, a) in alive.iter_mut().enumerate() {
                    if NodeId(i as u32) != task.source
                        && rng.gen::<f64>() < self.config.faults.node_failure_prob
                    {
                        *a = false;
                    }
                }
            }

            let mut pending: HashSet<NodeId> = task.dests.iter().copied().collect();
            let mut queue = EventQueue::new();
            let mut events_processed = 0usize;
            let mut on_air: Vec<(f64, f64, NodeId)> = Vec::new();

            let ctx_at = |node: NodeId| NodeContext {
                topo: self.topo,
                node,
                config: self.config,
                alive: None,
            };

            protocol.on_task_start(&ctx_at(task.source), task.source, &task.dests);

            let initial = MulticastPacket::new(0, task.source, task.dests.clone());
            let forwards = protocol.route(&ctx_at(task.source), initial);
            self.transmit_jittered(
                task.source,
                forwards,
                &mut queue,
                &mut report,
                &energy,
                &positions,
                &mut on_air,
                &mut rng,
            );

            while let Some((time, event)) = queue.pop() {
                events_processed += 1;
                if events_processed > self.config.max_events {
                    report.truncated = true;
                    break;
                }
                let Event::Deliver {
                    to,
                    from,
                    sent_at,
                    retries,
                    mut packet,
                } = event;
                if !alive[to.index()] {
                    report.dropped_packets += 1;
                    continue;
                }
                if self.config.faults.link_loss_prob > 0.0
                    && rng.gen::<f64>() < self.config.faults.link_loss_prob
                {
                    report.dropped_packets += 1;
                    continue;
                }
                if self.config.collisions && self.collides(&on_air, sent_at, time, from, to) {
                    if retries < self.config.max_retransmissions {
                        let airtime = time - sent_at;
                        let backoff = if self.config.tx_jitter_s > 0.0 {
                            rng.gen_range(0.0..=self.config.tx_jitter_s * (retries as f64 + 1.0))
                        } else {
                            airtime
                        };
                        let link_m = self.topo.pos(from).dist(self.topo.pos(to));
                        let listeners = self.topo.neighbors(from).len();
                        report.transmissions += 1;
                        report.bytes_transmitted += self.config.message_bytes;
                        report.links.push((from, to));
                        report.energy_j += energy.transmission_energy(
                            self.config.message_bytes,
                            listeners,
                            link_m,
                        );
                        let resend_at = time + backoff;
                        report.link_times_s.push(resend_at);
                        on_air.push((resend_at, resend_at + airtime, from));
                        queue.schedule(
                            resend_at + airtime,
                            Event::Deliver {
                                to,
                                from,
                                sent_at: resend_at,
                                retries: retries + 1,
                                packet,
                            },
                        );
                    } else {
                        report.dropped_packets += 1;
                    }
                    continue;
                }
                if packet.dests.contains(&to) {
                    packet.dests.retain(|&d| d != to);
                    if pending.remove(&to) {
                        report.delivery_hops.insert(to, packet.hops);
                        report.delivery_times_s.insert(to, time);
                        report.completion_time_s = report.completion_time_s.max(time);
                    }
                }
                if packet.dests.is_empty() {
                    continue;
                }
                let forwards = protocol.route(&ctx_at(to), packet);
                self.transmit_jittered(
                    to,
                    forwards,
                    &mut queue,
                    &mut report,
                    &energy,
                    &positions,
                    &mut on_air,
                    &mut rng,
                );
            }

            // The seed predates the guarantee oracle: it only knows *which*
            // destinations failed, not why. The parity harness compares the
            // id sets and the causes are pinned by the runner's own tests.
            let mut failed: Vec<NodeId> = pending.into_iter().collect();
            failed.sort();
            report.failed_dests = failed
                .into_iter()
                .map(|d| gmp_sim::FailedDest::new(d, gmp_sim::FailureCause::NoRoute))
                .collect();
            report
        }

        fn collides(
            &self,
            on_air: &[(f64, f64, NodeId)],
            start: f64,
            end: f64,
            from: NodeId,
            to: NodeId,
        ) -> bool {
            let rr = self.config.radio_range;
            on_air.iter().any(|&(a, b, sender)| {
                sender != from
                    && a < end
                    && start < b
                    && (sender == to || self.topo.pos(sender).dist(self.topo.pos(to)) <= rr)
            })
        }

        #[allow(clippy::too_many_arguments)]
        fn transmit_jittered(
            &self,
            sender: NodeId,
            forwards: Vec<Forward>,
            queue: &mut EventQueue,
            report: &mut TaskReport,
            energy: &EnergyModel,
            positions: &[gmp_geom::Point],
            on_air: &mut Vec<(f64, f64, NodeId)>,
            rng: &mut StdRng,
        ) {
            for mut fwd in forwards {
                assert!(self.topo.neighbors(sender).contains(&fwd.next_hop));
                fwd.packet.hops += 1;
                if fwd.packet.hops > self.config.max_path_hops {
                    report.dropped_packets += 1;
                    continue;
                }
                let bytes = if self.config.size_dependent_airtime {
                    fwd.packet.encoded_len(positions)
                } else {
                    self.config.message_bytes
                };
                let link_m = self.topo.pos(sender).dist(self.topo.pos(fwd.next_hop));
                let listeners = if self.config.power_control.is_some() {
                    self.topo
                        .neighbors(sender)
                        .iter()
                        .filter(|&&n| {
                            self.topo.pos(sender).dist(self.topo.pos(n)) <= link_m + gmp_geom::EPS
                        })
                        .count()
                } else {
                    self.topo.neighbors(sender).len()
                };
                report.transmissions += 1;
                report.bytes_transmitted += bytes;
                report.links.push((sender, fwd.next_hop));
                report.link_times_s.push(queue.now());
                report.energy_j += energy.transmission_energy(bytes, listeners, link_m);
                let jitter = if self.config.tx_jitter_s > 0.0 {
                    rng.gen_range(0.0..=self.config.tx_jitter_s)
                } else {
                    0.0
                };
                let sent_at = queue.now() + jitter;
                let arrival = sent_at + energy.airtime(bytes);
                if self.config.collisions {
                    on_air.push((sent_at, arrival, sender));
                }
                queue.schedule(
                    arrival,
                    Event::Deliver {
                        to: fwd.next_hop,
                        from: sender,
                        sent_at,
                        retries: 0,
                        packet: fwd.packet,
                    },
                );
            }
        }
    }
}

/// Every protocol in the workspace, freshly constructed (protocols may
/// carry per-task state, so old and new runs each get their own instance).
fn protocols() -> Vec<Box<dyn Protocol>> {
    vec![
        Box::new(GmpRouter::new()),
        Box::new(GrdRouter::new()),
        Box::new(LgsRouter::new()),
        Box::new(LgkRouter::default()),
        Box::new(DsmRouter::new()),
        Box::new(PbmRouter::new()),
        Box::new(SmtRouter::new()),
    ]
}

/// The configuration axes the rewrite touched: collision pruning (with and
/// without the jittered-backoff RNG path), link loss, power-control
/// listener counting, size-dependent airtime, failure injection, and a
/// kitchen-sink combination.
fn configs() -> Vec<(&'static str, SimConfig)> {
    let base = SimConfig::paper().with_node_count(300);
    vec![
        ("plain", base.clone()),
        (
            "collisions-jitter",
            base.clone()
                .with_collisions(true)
                .with_tx_jitter(0.005)
                .with_retransmissions(7),
        ),
        (
            "collisions-no-jitter",
            base.clone().with_collisions(true).with_retransmissions(2),
        ),
        ("link-loss", base.clone().with_link_loss_prob(0.3)),
        (
            "power-control",
            base.clone()
                .with_power_control(gmp_sim::config::PowerControl {
                    alpha: 2.0,
                    overhead_w: 0.2,
                }),
        ),
        (
            "size-dependent-airtime",
            base.clone().with_size_dependent_airtime(true),
        ),
        ("failures", base.clone().with_node_failure_prob(0.1)),
        (
            "kitchen-sink",
            base.with_collisions(true)
                .with_tx_jitter(0.003)
                .with_retransmissions(4)
                .with_link_loss_prob(0.05)
                .with_node_failure_prob(0.05),
        ),
    ]
}

fn assert_identical(old: &TaskReport, new: &TaskReport, what: &str) {
    // Failure causes are produced by the guarantee oracle, which the
    // pre-oracle seed cannot replicate: compare the failed id *sets*
    // exactly, then everything else with causes stripped.
    assert_eq!(
        old.failed_ids().collect::<Vec<_>>(),
        new.failed_ids().collect::<Vec<_>>(),
        "failed destinations diverged: {what}"
    );
    let mut old = old.clone();
    let mut new = new.clone();
    old.failed_dests.clear();
    new.failed_dests.clear();
    let (old, new) = (&old, &new);
    // `PartialEq` on f64 fields already demands exact equality for finite
    // values; pin the bit patterns of the accumulated floats explicitly so
    // a `-0.0`/`0.0` or NaN drift cannot slip through.
    assert_eq!(old, new, "reports diverged: {what}");
    assert_eq!(
        old.energy_j.to_bits(),
        new.energy_j.to_bits(),
        "energy bits diverged: {what}"
    );
    assert_eq!(
        old.completion_time_s.to_bits(),
        new.completion_time_s.to_bits(),
        "completion-time bits diverged: {what}"
    );
    for (a, b) in old.link_times_s.iter().zip(&new.link_times_s) {
        assert_eq!(a.to_bits(), b.to_bits(), "link-time bits diverged: {what}");
    }
}

#[test]
fn task_reports_are_bit_identical_across_protocols_and_configs() {
    let topo = Topology::random(
        &SimConfig::paper().with_node_count(300).topology_config(),
        11,
    );
    let tasks: Vec<MulticastTask> = (0..3)
        .map(|i| MulticastTask::random(&topo, 10, 400 + i))
        .collect();
    let mut scratch = SimScratch::new();
    for (config_name, config) in configs() {
        let old_runner = seed_ref::TaskRunner::new(&topo, &config);
        let new_runner = TaskRunner::new(&topo, &config);
        for (task_i, task) in tasks.iter().enumerate() {
            for seed in [0u64, 5] {
                for mut old_proto in protocols() {
                    let mut new_proto = protocols()
                        .into_iter()
                        .find(|p| p.name() == old_proto.name())
                        .expect("same protocol set");
                    let old = old_runner.run_seeded(old_proto.as_mut(), task, seed);
                    let new =
                        new_runner.run_with_scratch(new_proto.as_mut(), task, seed, &mut scratch);
                    let what = format!(
                        "protocol {} config {config_name} task {task_i} seed {seed}",
                        old.protocol
                    );
                    assert_identical(&old, &new, &what);
                }
            }
        }
    }
}

mod zero_fault_parity {
    //! Satellite of the fault subsystem: an *inert* fault plan — one that
    //! carries timed events which can never fire — must leave every
    //! protocol's report bit-identical to a plain run. This pins the two
    //! invariants the injector hooks rely on: the timed-event machinery
    //! consumes zero task-RNG draws, and an all-`true` liveness view
    //! exposed to the protocols selects exactly the hops `None` does.

    use super::*;
    use gmp_geom::Point;
    use gmp_net::NodeId;
    use gmp_sim::{FaultPlan, FaultRegion};
    use proptest::prelude::*;

    /// Events present, effects impossible: a crash aimed past the
    /// topology, a blackout over an empty corner of the plane, and a
    /// fully-on duty cycle.
    fn inert_plan(node_count: usize) -> FaultPlan {
        FaultPlan::none()
            .with_crash(NodeId(node_count as u32 + 7), 0.0)
            .with_blackout(
                FaultRegion::Disk {
                    center: Point::new(-1e6, -1e6),
                    radius: 1.0,
                },
                1e9,
                f64::INFINITY,
            )
            .with_duty_cycle(1.0, 1.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        #[test]
        fn inert_fault_plans_change_nothing(
            topo_seed in 0u64..200,
            task_seed in 0u64..1000,
            k in 2usize..15,
            run_seed in 0u64..8,
        ) {
            let plain = SimConfig::paper().with_node_count(300);
            let faulted = plain.clone().with_faults(inert_plan(300));
            let topo = Topology::random(&plain.topology_config(), topo_seed);
            let task = MulticastTask::random(&topo, k, task_seed);
            let mut scratch_a = SimScratch::new();
            let mut scratch_b = SimScratch::new();
            for mut proto_a in protocols() {
                let mut proto_b = protocols()
                    .into_iter()
                    .find(|p| p.name() == proto_a.name())
                    .expect("same protocol set");
                let a = TaskRunner::new(&topo, &plain).run_with_scratch(
                    proto_a.as_mut(),
                    &task,
                    run_seed,
                    &mut scratch_a,
                );
                let b = TaskRunner::new(&topo, &faulted).run_with_scratch(
                    proto_b.as_mut(),
                    &task,
                    run_seed,
                    &mut scratch_b,
                );
                // Configs differ (the plan is embedded in SimConfig), so
                // reports must match in full — including bit patterns.
                prop_assert_eq!(&a, &b, "inert plan diverged: {}", a.protocol);
                prop_assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits());
                prop_assert_eq!(
                    a.completion_time_s.to_bits(),
                    b.completion_time_s.to_bits()
                );
                for (x, y) in a.link_times_s.iter().zip(&b.link_times_s) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }
}

#[test]
fn collision_heavy_workload_is_bit_identical() {
    // A dense deployment with a long retransmission budget maximizes the
    // pruning heap's workload: many overlapping airtimes, deep backoff
    // chains, and stale entries that the optimized runner pops early.
    let config = SimConfig::paper()
        .with_node_count(250)
        .with_area_side(600.0)
        .with_collisions(true)
        .with_tx_jitter(0.004)
        .with_retransmissions(6);
    let topo = Topology::random(&config.topology_config(), 23);
    let old_runner = seed_ref::TaskRunner::new(&topo, &config);
    let new_runner = TaskRunner::new(&topo, &config);
    let mut scratch = SimScratch::new();
    for i in 0..8 {
        let task = MulticastTask::random(&topo, 15, 900 + i);
        let mut old_proto = GmpRouter::new();
        let mut new_proto = GmpRouter::new();
        let old = old_runner.run_seeded(&mut old_proto, &task, i);
        let new = new_runner.run_with_scratch(&mut new_proto, &task, i, &mut scratch);
        assert_identical(&old, &new, &format!("collision-heavy task {i}"));
    }
}
