//! The experiment sweeps fan tasks out over a work-stealing thread pool;
//! scheduling is nondeterministic, so the aggregation must not be. Workers
//! return per-job partials that the caller folds in job-index order, which
//! makes every floating-point sum independent of which thread ran what
//! when. This test pins that: the same sweep on one worker and on eight
//! must serialize to byte-identical rows.
//!
//! This file holds exactly one test: the worker-thread override is
//! process-global, and a concurrently running sibling would race on it.

use gmp_bench::experiments::{destination_sweep, set_worker_threads, Scale};
use gmp_bench::protocols::ProtocolKind;
use gmp_sim::SimConfig;

#[test]
fn destination_sweep_rows_are_identical_across_thread_counts() {
    let config = SimConfig::paper().with_node_count(200);
    let scale = Scale {
        networks: 2,
        tasks_per_network: 4,
        k_values: vec![3, 9],
    };
    let protocols = [ProtocolKind::Gmp, ProtocolKind::Grd];

    set_worker_threads(1);
    let single = destination_sweep(&config, &scale, &protocols);
    set_worker_threads(8);
    let eight = destination_sweep(&config, &scale, &protocols);
    set_worker_threads(0);

    assert_eq!(single.len(), eight.len());
    for (a, b) in single.iter().zip(&eight) {
        // Debug formatting prints f64 as the shortest round-trip decimal,
        // so equal strings mean equal bit patterns (and −0.0 ≠ 0.0).
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "sweep rows diverged between --threads 1 and --threads 8"
        );
    }
}
