//! Session-level determinism of the concurrent engine: with a fixed seed,
//! every session's [`TaskReport`] must be **bit-identical** to running
//! that session alone.
//!
//! The harness generates a random service workload (groups, live
//! membership churn, crash-derived leaves, session arrivals), runs it
//! through [`gmp_service::SessionEngine`] — interleaved over one shared
//! topology, shared decision cache, pooled scratch — and then replays
//! every completed session solo through [`TaskRunner::run_seeded`] with a
//! fresh protocol instance. Any divergence means engine interleaving
//! leaked state between sessions. The sweep crosses topology seeds,
//! admission capacities, fault/churn plans, and the protocol sharing
//! modes (GMP and LGS shared, SMT per-session — SMT keeps per-task state,
//! which is exactly what `EngineProtocol::PerSession` exists for).
//!
//! This suite rides next to `sim_parity` and `cache_parity` in CI: all
//! three pin the bit-exactness contracts the benches' speedups rely on.

use std::collections::BTreeMap;
use std::sync::Arc;

use gmp_baselines::{LgsRouter, SmtRouter};
use gmp_core::{CacheConfig, ConcurrentTreeCache, GmpRouter};
use gmp_net::{NodeId, Topology};
use gmp_service::{
    EngineProtocol, ParallelProtocol, ServiceConfig, ServiceRun, ServiceWorkload, SessionEngine,
    WorkloadParams,
};
use gmp_sim::{FaultPlan, Protocol, SimConfig, TaskRunner};
use proptest::prelude::*;

/// A fresh-protocol-instance constructor.
type ProtocolFactory = fn() -> Box<dyn Protocol>;

/// The protocol modes under test: name, whether the engine may share one
/// instance across sessions, and a fresh-instance factory.
fn factory(mode: usize) -> (&'static str, bool, ProtocolFactory) {
    match mode {
        0 => ("gmp", true, || Box::new(GmpRouter::new())),
        1 => ("lgs", true, || Box::new(LgsRouter::new())),
        _ => ("smt", false, || Box::new(SmtRouter::new())),
    }
}

/// A fault/churn plan family over the candidate pool.
fn plan_for(variant: usize, candidates: &[NodeId]) -> FaultPlan {
    match variant {
        0 => FaultPlan::none(),
        1 => {
            // Timed crashes at session-local t = 0 on a node stride.
            let mut plan = FaultPlan::none();
            for &node in candidates.iter().step_by(37).take(8) {
                plan = plan.with_crash(node, 0.0);
            }
            plan
        }
        _ => {
            // Mid-task crashes: liveness flips while packets are in
            // flight (~1 ms airtimes), exercising FaultScratch sharing.
            let mut plan = FaultPlan::none();
            for (i, &node) in candidates.iter().step_by(53).take(6).enumerate() {
                plan = plan.with_crash(node, 0.001 * (i + 1) as f64);
            }
            plan
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_concurrent_session_matches_its_solo_run(
        topo_seed in 0u64..6,
        workload_seed in 0u64..u64::MAX,
        mode in 0usize..3,
        plan_variant in 0usize..3,
        capacity in 1usize..48,
    ) {
        let base = SimConfig::paper().with_node_count(300);
        let topo = Topology::random(&base.topology_config(), topo_seed);
        let candidates: Vec<NodeId> = (0..topo.len() as u32).map(NodeId).collect();
        let plan = plan_for(plan_variant, &candidates);
        let config = base.with_faults(plan.clone());

        let params = WorkloadParams {
            groups: 6,
            members_per_group: 7,
            churn_updates: 40,
            sessions: 36,
            duration_s: 20.0,
            min_members: 2,
            max_members: 14,
            crash_detect_s: 10.0,
        };
        let workload = ServiceWorkload::random(&candidates, &params, &plan, workload_seed);

        let (name, shared, fresh) = factory(mode);
        let mut engine = SessionEngine::with_service(
            &topo,
            &config,
            ServiceConfig { max_in_flight: capacity },
        );
        let run = if shared {
            let mut protocol = fresh();
            engine.run(EngineProtocol::Shared(protocol.as_mut()), &workload)
        } else {
            let mut make = fresh;
            let mut boxed_factory = move || make();
            engine.run(EngineProtocol::PerSession(&mut boxed_factory), &workload)
        };
        prop_assert!(!run.outcomes.is_empty(), "workload produced no sessions");
        prop_assert_eq!(
            run.outcomes.len() + run.skipped_empty,
            workload.sessions.len()
        );

        // Solo replay: a fresh protocol and runner per session — any
        // difference is state leaked through the engine's sharing.
        let runner = TaskRunner::new(&topo, &config);
        for outcome in &run.outcomes {
            let mut solo = fresh();
            let report = runner.run_seeded(solo.as_mut(), &outcome.task, outcome.seed);
            prop_assert_eq!(
                &outcome.report,
                &report,
                "{} session {} (capacity {}, plan {}) diverged from solo",
                name,
                outcome.id,
                capacity,
                plan_variant
            );
        }

        // And the snapshot the engine took matches the engine-independent
        // resolution of the same workload.
        let resolved = workload.resolve_tasks();
        for outcome in &run.outcomes {
            prop_assert_eq!(
                Some(&outcome.task),
                resolved[outcome.id as usize].as_ref()
            );
        }
    }
}

proptest! {
    // Each case runs the full 1/2/4/8 worker axis plus 28 solo replays;
    // fewer cases keep the suite's wall clock in line with its siblings.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The worker-count axis: sharding the wheel across 1/2/4/8 workers
    /// (all GMP workers over one shared [`ConcurrentTreeCache`]) must not
    /// change a single bit of any session report relative to the solo
    /// replays, nor the aggregate failure/cause census — including under
    /// crash-fault plans, where a schedule leak would first surface as a
    /// shifted cause histogram.
    #[test]
    fn every_worker_count_matches_solo_runs_bit_for_bit(
        topo_seed in 0u64..4,
        workload_seed in 0u64..u64::MAX,
        plan_variant in 0usize..3,
        capacity in 1usize..32,
    ) {
        let base = SimConfig::paper().with_node_count(300);
        let topo = Topology::random(&base.topology_config(), topo_seed);
        let candidates: Vec<NodeId> = (0..topo.len() as u32).map(NodeId).collect();
        let plan = plan_for(plan_variant, &candidates);
        let config = base.with_faults(plan.clone());

        let params = WorkloadParams {
            groups: 6,
            members_per_group: 7,
            churn_updates: 40,
            sessions: 28,
            duration_s: 20.0,
            min_members: 2,
            max_members: 14,
            crash_detect_s: 10.0,
        };
        let workload = ServiceWorkload::random(&candidates, &params, &plan, workload_seed);

        let cache = Arc::new(ConcurrentTreeCache::with_config(CacheConfig::default()));
        let factory = {
            let cache = Arc::clone(&cache);
            move || {
                Box::new(GmpRouter::with_shared_cache(Arc::clone(&cache))) as Box<dyn Protocol>
            }
        };

        let runner = TaskRunner::new(&topo, &config);
        let mut reference: Option<ServiceRun> = None;
        for threads in [1usize, 2, 4, 8] {
            let mut engine = SessionEngine::with_service(
                &topo,
                &config,
                ServiceConfig { max_in_flight: capacity },
            );
            let run = engine.run_parallel(
                ParallelProtocol::PerWorker(&factory),
                &workload,
                threads,
            );
            prop_assert!(!run.outcomes.is_empty(), "workload produced no sessions");

            match &reference {
                None => {
                    // The 1-worker pass anchors the axis: solo-replay every
                    // session once, then require the other counts to match
                    // it bit for bit.
                    for outcome in &run.outcomes {
                        let mut solo = GmpRouter::new();
                        let report = runner.run_seeded(&mut solo, &outcome.task, outcome.seed);
                        prop_assert_eq!(
                            &outcome.report,
                            &report,
                            "session {} (capacity {}, plan {}) diverged from solo at 1 worker",
                            outcome.id,
                            capacity,
                            plan_variant
                        );
                    }
                    reference = Some(run);
                }
                Some(base_run) => {
                    prop_assert_eq!(run.outcomes.len(), base_run.outcomes.len());
                    prop_assert_eq!(run.skipped_empty, base_run.skipped_empty);
                    prop_assert_eq!(run.decisions, base_run.decisions);
                    for (a, b) in run.outcomes.iter().zip(&base_run.outcomes) {
                        prop_assert_eq!(a.id, b.id);
                        prop_assert_eq!(&a.task, &b.task);
                        prop_assert_eq!(a.seed, b.seed);
                        prop_assert_eq!(
                            &a.report,
                            &b.report,
                            "session {} (capacity {}, plan {}) diverged at {} workers",
                            a.id,
                            capacity,
                            plan_variant,
                            threads
                        );
                    }
                    prop_assert_eq!(
                        cause_census(&run),
                        cause_census(base_run),
                        "failure/cause census shifted at {} workers",
                        threads
                    );
                }
            }
        }
    }
}

/// Aggregate failure census of a run: sessions with any failed
/// destination, plus a per-cause destination count.
fn cause_census(run: &ServiceRun) -> (usize, BTreeMap<String, usize>) {
    let mut failed_sessions = 0usize;
    let mut by_cause = BTreeMap::new();
    for outcome in &run.outcomes {
        failed_sessions += usize::from(!outcome.report.failed_dests.is_empty());
        for failed in &outcome.report.failed_dests {
            *by_cause.entry(format!("{:?}", failed.cause)).or_insert(0) += 1;
        }
    }
    (failed_sessions, by_cause)
}
