//! Session-level determinism of the concurrent engine: with a fixed seed,
//! every session's [`TaskReport`] must be **bit-identical** to running
//! that session alone.
//!
//! The harness generates a random service workload (groups, live
//! membership churn, crash-derived leaves, session arrivals), runs it
//! through [`gmp_service::SessionEngine`] — interleaved over one shared
//! topology, shared decision cache, pooled scratch — and then replays
//! every completed session solo through [`TaskRunner::run_seeded`] with a
//! fresh protocol instance. Any divergence means engine interleaving
//! leaked state between sessions. The sweep crosses topology seeds,
//! admission capacities, fault/churn plans, and the protocol sharing
//! modes (GMP and LGS shared, SMT per-session — SMT keeps per-task state,
//! which is exactly what `EngineProtocol::PerSession` exists for).
//!
//! This suite rides next to `sim_parity` and `cache_parity` in CI: all
//! three pin the bit-exactness contracts the benches' speedups rely on.

use gmp_baselines::{LgsRouter, SmtRouter};
use gmp_core::GmpRouter;
use gmp_net::{NodeId, Topology};
use gmp_service::{EngineProtocol, ServiceConfig, ServiceWorkload, SessionEngine, WorkloadParams};
use gmp_sim::{FaultPlan, Protocol, SimConfig, TaskRunner};
use proptest::prelude::*;

/// A fresh-protocol-instance constructor.
type ProtocolFactory = fn() -> Box<dyn Protocol>;

/// The protocol modes under test: name, whether the engine may share one
/// instance across sessions, and a fresh-instance factory.
fn factory(mode: usize) -> (&'static str, bool, ProtocolFactory) {
    match mode {
        0 => ("gmp", true, || Box::new(GmpRouter::new())),
        1 => ("lgs", true, || Box::new(LgsRouter::new())),
        _ => ("smt", false, || Box::new(SmtRouter::new())),
    }
}

/// A fault/churn plan family over the candidate pool.
fn plan_for(variant: usize, candidates: &[NodeId]) -> FaultPlan {
    match variant {
        0 => FaultPlan::none(),
        1 => {
            // Timed crashes at session-local t = 0 on a node stride.
            let mut plan = FaultPlan::none();
            for &node in candidates.iter().step_by(37).take(8) {
                plan = plan.with_crash(node, 0.0);
            }
            plan
        }
        _ => {
            // Mid-task crashes: liveness flips while packets are in
            // flight (~1 ms airtimes), exercising FaultScratch sharing.
            let mut plan = FaultPlan::none();
            for (i, &node) in candidates.iter().step_by(53).take(6).enumerate() {
                plan = plan.with_crash(node, 0.001 * (i + 1) as f64);
            }
            plan
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_concurrent_session_matches_its_solo_run(
        topo_seed in 0u64..6,
        workload_seed in 0u64..u64::MAX,
        mode in 0usize..3,
        plan_variant in 0usize..3,
        capacity in 1usize..48,
    ) {
        let base = SimConfig::paper().with_node_count(300);
        let topo = Topology::random(&base.topology_config(), topo_seed);
        let candidates: Vec<NodeId> = (0..topo.len() as u32).map(NodeId).collect();
        let plan = plan_for(plan_variant, &candidates);
        let config = base.with_faults(plan.clone());

        let params = WorkloadParams {
            groups: 6,
            members_per_group: 7,
            churn_updates: 40,
            sessions: 36,
            duration_s: 20.0,
            min_members: 2,
            max_members: 14,
            crash_detect_s: 10.0,
        };
        let workload = ServiceWorkload::random(&candidates, &params, &plan, workload_seed);

        let (name, shared, fresh) = factory(mode);
        let mut engine = SessionEngine::with_service(
            &topo,
            &config,
            ServiceConfig { max_in_flight: capacity },
        );
        let run = if shared {
            let mut protocol = fresh();
            engine.run(EngineProtocol::Shared(protocol.as_mut()), &workload)
        } else {
            let mut make = fresh;
            let mut boxed_factory = move || make();
            engine.run(EngineProtocol::PerSession(&mut boxed_factory), &workload)
        };
        prop_assert!(!run.outcomes.is_empty(), "workload produced no sessions");
        prop_assert_eq!(
            run.outcomes.len() + run.skipped_empty,
            workload.sessions.len()
        );

        // Solo replay: a fresh protocol and runner per session — any
        // difference is state leaked through the engine's sharing.
        let runner = TaskRunner::new(&topo, &config);
        for outcome in &run.outcomes {
            let mut solo = fresh();
            let report = runner.run_seeded(solo.as_mut(), &outcome.task, outcome.seed);
            prop_assert_eq!(
                &outcome.report,
                &report,
                "{} session {} (capacity {}, plan {}) diverged from solo",
                name,
                outcome.id,
                capacity,
                plan_variant
            );
        }

        // And the snapshot the engine took matches the engine-independent
        // resolution of the same workload.
        let resolved = workload.resolve_tasks();
        for outcome in &run.outcomes {
            prop_assert_eq!(
                Some(&outcome.task),
                resolved[outcome.id as usize].as_ref()
            );
        }
    }
}
