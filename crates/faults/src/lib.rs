//! Deterministic fault injection for the GMP simulator, plus the
//! delivery-guarantee oracle.
//!
//! The paper's robustness story — voids, sparse regions, perimeter-mode
//! fallback — cannot be exercised with i.i.d. coin flips alone. This crate
//! models faults as a *plan*: a seeded, reproducible schedule of typed
//! events layered on top of the legacy Bernoulli knobs.
//!
//! - [`FaultPlan`] — the schedule: Bernoulli node/link failure
//!   probabilities plus timed [`FaultEvent`]s (crashes, regional
//!   blackouts, duty-cycle sleep, mobility-driven link churn).
//! - [`FaultScratch`] — the runtime: compiles a plan against a topology
//!   (cached), advances node liveness as simulated time passes, and
//!   answers per-delivery queries from the event loop.
//! - The **oracle** ([`FaultScratch::classify_failures`]) — after a task,
//!   computes ground-truth reachability on the faulted connectivity graph
//!   and classifies every failed destination as *justified* (the graph
//!   itself was disconnected) or a *protocol failure* (reachable but
//!   undelivered), with the proximate [`FailureCause`] attached.
//!
//! Everything is deterministic: a plan never consumes simulator RNG draws
//! beyond the two legacy Bernoulli streams, and timed events are compiled
//! from the plan's own seeds, so equal seeds give bit-identical runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cause;
mod plan;
mod runtime;

pub use cause::{FailedDest, FailureCause};
pub use plan::{FaultEvent, FaultPlan, FaultRegion};
pub use runtime::FaultScratch;
