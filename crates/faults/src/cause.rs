//! Failure classification: why a destination was not reached.

use gmp_net::NodeId;

/// Why a multicast destination failed to receive the packet.
///
/// Causes come from two places. The event loop records the *proximate*
/// cause whenever it drops a packet copy (last write wins, so the cause
/// reflects the final copy that was still carrying the destination). The
/// oracle then overrides the proximate cause with a *justified* verdict —
/// [`FailureCause::Disconnected`] or [`FailureCause::DestDead`] — when
/// ground-truth reachability shows no protocol could have delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FailureCause {
    /// Justified: the destination was unreachable from the source in the
    /// faulted connectivity graph — no protocol could have delivered.
    Disconnected,
    /// Justified: the destination node itself was dead (Bernoulli sample,
    /// crash, or blackout).
    DestDead,
    /// The last copy carrying this destination arrived at a dead or
    /// sleeping relay.
    DeadNode,
    /// The last copy was dropped on a link severed by a churn episode.
    LinkDown,
    /// The last copy was lost to the Bernoulli link-loss draw.
    LinkLoss,
    /// The last copy was destroyed by collisions after exhausting its
    /// retransmission budget.
    Collision,
    /// The last copy exceeded the per-copy hop cap (routing loop guard).
    HopCap,
    /// The event cap fired before the destination was resolved; copies may
    /// still have been in flight.
    Truncated,
    /// The protocol stopped forwarding with the destination still pending
    /// (greedy/perimeter dead-end, empty forward set).
    #[default]
    NoRoute,
}

impl FailureCause {
    /// Every cause, in declaration order — for histograms and serializers.
    pub const ALL: [FailureCause; 9] = [
        FailureCause::Disconnected,
        FailureCause::DestDead,
        FailureCause::DeadNode,
        FailureCause::LinkDown,
        FailureCause::LinkLoss,
        FailureCause::Collision,
        FailureCause::HopCap,
        FailureCause::Truncated,
        FailureCause::NoRoute,
    ];

    /// `true` when the failure is excused by the fault model itself: the
    /// destination was dead or graph-unreachable, so *no* protocol could
    /// have delivered. Everything else counts against the protocol.
    pub fn is_justified(self) -> bool {
        matches!(self, FailureCause::Disconnected | FailureCause::DestDead)
    }

    /// Stable kebab-case label used in JSON reports.
    pub fn as_str(self) -> &'static str {
        match self {
            FailureCause::Disconnected => "disconnected",
            FailureCause::DestDead => "dest-dead",
            FailureCause::DeadNode => "dead-node",
            FailureCause::LinkDown => "link-down",
            FailureCause::LinkLoss => "link-loss",
            FailureCause::Collision => "collision",
            FailureCause::HopCap => "hop-cap",
            FailureCause::Truncated => "truncated",
            FailureCause::NoRoute => "no-route",
        }
    }

    /// Index of this cause inside [`FailureCause::ALL`].
    pub fn index(self) -> usize {
        FailureCause::ALL
            .iter()
            .position(|&c| c == self)
            .expect("cause listed in ALL")
    }
}

/// A destination that did not receive the packet, with the cause attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FailedDest {
    /// The undelivered destination.
    pub dest: NodeId,
    /// Why it failed (see [`FailureCause`]).
    pub cause: FailureCause,
}

impl FailedDest {
    /// Bundles a destination with its failure cause.
    pub fn new(dest: NodeId, cause: FailureCause) -> Self {
        FailedDest { dest, cause }
    }

    /// `true` when the fault model excuses this failure.
    pub fn is_justified(&self) -> bool {
        self.cause.is_justified()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn justified_split_matches_spec() {
        for cause in FailureCause::ALL {
            let expect = cause == FailureCause::Disconnected || cause == FailureCause::DestDead;
            assert_eq!(cause.is_justified(), expect, "{cause:?}");
        }
    }

    #[test]
    fn labels_are_unique_and_kebab() {
        let mut seen = std::collections::HashSet::new();
        for cause in FailureCause::ALL {
            let s = cause.as_str();
            assert!(seen.insert(s), "duplicate label {s}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
            assert_eq!(FailureCause::ALL[cause.index()], cause);
        }
    }

    #[test]
    fn default_is_no_route() {
        assert_eq!(FailureCause::default(), FailureCause::NoRoute);
        let f = FailedDest::new(NodeId(3), FailureCause::DestDead);
        assert!(f.is_justified());
        assert!(!FailedDest::new(NodeId(3), FailureCause::HopCap).is_justified());
    }
}
