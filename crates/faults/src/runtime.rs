//! Plan compilation, the per-task liveness timeline, and the
//! delivery-guarantee oracle.

use gmp_net::mobility::RandomWaypoint;
use gmp_net::{NodeId, Topology};

use crate::cause::{FailedDest, FailureCause};
use crate::plan::{FaultEvent, FaultPlan, FaultRegion, Fnv};

/// A liveness flip compiled from a crash or blackout edge.
#[derive(Debug, Clone, Copy)]
struct Transition {
    time: f64,
    node: u32,
    up: bool,
}

/// One link-churn episode, compiled to the set of severed directed links.
#[derive(Debug, Clone)]
struct ChurnWindow {
    start_s: f64,
    end_s: f64,
    /// Severed directed links as `(from << 32) | to`, sorted.
    severed: Vec<u64>,
}

/// A duty-cycle schedule, pre-multiplied to (period, awake window).
#[derive(Debug, Clone, Copy)]
struct Duty {
    period_s: f64,
    on_s: f64,
}

/// A [`FaultPlan`] compiled against one topology: timed events lowered to
/// sorted liveness transitions, per-node blackout membership resolved,
/// and churn episodes expanded to explicit severed-link sets.
#[derive(Debug, Default)]
struct CompiledPlan {
    /// Nodes down at `t = 0` (crashes/blackouts starting at zero).
    down_at_start: Vec<bool>,
    /// Nodes down at *any* point of the run from a permanent-style fault
    /// (crash or blackout) — the oracle's pessimistic liveness mask.
    /// Duty-cycle sleep is deliberately excluded: it is transient, so
    /// failures under it count against the protocol.
    ever_down: Vec<bool>,
    /// Liveness flips sorted by time (ties broken by node id).
    transitions: Vec<Transition>,
    /// Duty-cycle schedules (inert `on_fraction = 1` entries dropped).
    duty: Vec<Duty>,
    /// Link-churn episodes sorted by start time.
    churn: Vec<ChurnWindow>,
    /// Union of all episodes' severed links, sorted — the oracle excludes
    /// these edges from the reachability graph.
    ever_severed: Vec<u64>,
}

/// Golden-ratio fractional part: decorrelates per-node duty phases
/// without consuming any RNG.
const PHASE_STRIDE: f64 = 0.618_033_988_749_894_9;

fn link_key(from: NodeId, to: NodeId) -> u64 {
    ((from.0 as u64) << 32) | to.0 as u64
}

impl CompiledPlan {
    fn compile(&mut self, plan: &FaultPlan, topo: &Topology) {
        let n = topo.len();
        self.down_at_start.clear();
        self.down_at_start.resize(n, false);
        self.ever_down.clear();
        self.ever_down.resize(n, false);
        self.transitions.clear();
        self.duty.clear();
        self.churn.clear();
        self.ever_severed.clear();

        for ev in &plan.events {
            match *ev {
                FaultEvent::Crash { node, at_s } => {
                    // Plans may be written for a larger network; crashes
                    // aimed past the topology are inert.
                    if node.index() >= n {
                        continue;
                    }
                    if at_s <= 0.0 {
                        self.down_at_start[node.index()] = true;
                    } else {
                        self.transitions.push(Transition {
                            time: at_s,
                            node: node.0,
                            up: false,
                        });
                    }
                    self.ever_down[node.index()] = true;
                }
                FaultEvent::Blackout {
                    region,
                    start_s,
                    end_s,
                } => self.compile_blackout(topo, region, start_s, end_s),
                FaultEvent::DutyCycle {
                    period_s,
                    on_fraction,
                } => {
                    if on_fraction < 1.0 {
                        self.duty.push(Duty {
                            period_s,
                            on_s: on_fraction * period_s,
                        });
                    }
                }
                FaultEvent::LinkChurn {
                    start_s,
                    end_s,
                    speed_mps,
                    pause_s,
                    seed,
                } => self.compile_churn(topo, start_s, end_s, speed_mps, pause_s, seed),
            }
        }

        self.transitions
            .sort_by(|a, b| a.time.total_cmp(&b.time).then(a.node.cmp(&b.node)));
        self.churn.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
        self.ever_severed.sort_unstable();
        self.ever_severed.dedup();
    }

    fn compile_blackout(&mut self, topo: &Topology, region: FaultRegion, start_s: f64, end_s: f64) {
        for i in 0..topo.len() {
            if !region.contains(topo.pos(NodeId(i as u32))) {
                continue;
            }
            if start_s <= 0.0 {
                self.down_at_start[i] = true;
            } else {
                self.transitions.push(Transition {
                    time: start_s,
                    node: i as u32,
                    up: false,
                });
            }
            if end_s.is_finite() {
                self.transitions.push(Transition {
                    time: end_s,
                    node: i as u32,
                    up: true,
                });
            }
            self.ever_down[i] = true;
        }
    }

    /// Runs the episode's seeded waypoint walk for the episode's duration
    /// and severs every sim-topology link the walk would have broken.
    fn compile_churn(
        &mut self,
        topo: &Topology,
        start_s: f64,
        end_s: f64,
        speed_mps: (f64, f64),
        pause_s: (f64, f64),
        seed: u64,
    ) {
        let mut walk = RandomWaypoint::new(
            topo.area(),
            topo.len(),
            topo.radio_range(),
            speed_mps,
            pause_s,
            seed,
        );
        let before = walk.snapshot();
        walk.advance(end_s - start_s);
        let after = walk.snapshot();
        let mut severed = Vec::new();
        for u in 0..topo.len() {
            let u_id = NodeId(u as u32);
            for &v in before.neighbors(u_id) {
                if after.neighbors(u_id).binary_search(&v).is_err()
                    && topo.neighbors(u_id).binary_search(&v).is_ok()
                {
                    severed.push(link_key(u_id, v));
                }
            }
        }
        severed.sort_unstable();
        self.ever_severed.extend_from_slice(&severed);
        self.churn.push(ChurnWindow {
            start_s,
            end_s,
            severed,
        });
    }

    fn asleep(&self, node: NodeId, now: f64) -> bool {
        self.duty.iter().any(|d| {
            let phase = (node.0 as f64 * PHASE_STRIDE).fract() * d.period_s;
            (now - phase).rem_euclid(d.period_s) >= d.on_s
        })
    }
}

/// A structural fingerprint of the topology, pairing with
/// [`FaultPlan::fingerprint`] to key the compiled-plan cache.
fn topology_token(topo: &Topology) -> u64 {
    let mut h = Fnv::new();
    h.word(topo.len() as u64);
    h.word(topo.radio_range().to_bits());
    for p in topo.positions_ref() {
        h.word(p.x.to_bits());
        h.word(p.y.to_bits());
    }
    h.finish()
}

/// Reusable per-task fault state: owns the compiled plan (cached across
/// tasks keyed by plan + topology fingerprints), walks the liveness
/// timeline as simulated time advances, and runs the post-task oracle.
///
/// The runner embeds one of these in its `SimScratch`; all methods are
/// allocation-free after the first task against a given plan/topology.
#[derive(Debug, Default)]
pub struct FaultScratch {
    compiled: CompiledPlan,
    cache_key: Option<(u64, u64)>,
    /// Next transition to apply (index into `compiled.transitions`).
    cursor: usize,
    /// Nodes killed by the Bernoulli sample this task — an "up"
    /// transition must not resurrect them.
    bern_dead: Vec<bool>,
    /// Oracle BFS state.
    reach: Vec<bool>,
    stack: Vec<u32>,
}

impl FaultScratch {
    /// A fresh scratch with no compiled plan.
    pub fn new() -> Self {
        FaultScratch::default()
    }

    /// Prepares the timeline for one task: compiles `plan` against
    /// `topo` (cached), snapshots the Bernoulli deaths already applied to
    /// `alive`, and applies the `t = 0` fault state. The task `source` is
    /// exempt from node faults.
    ///
    /// Only meaningful when `plan.has_events()`; the runner skips the
    /// call (and every other timeline query) otherwise.
    pub fn begin_task(
        &mut self,
        plan: &FaultPlan,
        topo: &Topology,
        source: NodeId,
        alive: &mut [bool],
    ) {
        let key = (plan.fingerprint(), topology_token(topo));
        if self.cache_key != Some(key) {
            self.compiled.compile(plan, topo);
            self.cache_key = Some(key);
        }
        self.cursor = 0;
        self.bern_dead.clear();
        self.bern_dead.extend(alive.iter().map(|&a| !a));
        for (i, a) in alive.iter_mut().enumerate() {
            if self.compiled.down_at_start[i] && NodeId(i as u32) != source {
                *a = false;
            }
        }
    }

    /// Applies every liveness transition at or before `now` to `alive`.
    /// Amortized O(1) per event-loop iteration (a cursor over the sorted
    /// transition list).
    pub fn advance_to(&mut self, now: f64, source: NodeId, alive: &mut [bool]) {
        while let Some(t) = self.compiled.transitions.get(self.cursor) {
            if t.time > now {
                break;
            }
            let i = t.node as usize;
            if NodeId(t.node) != source {
                // An "up" edge (blackout lifting) must not resurrect a
                // node the Bernoulli sample killed for the whole task.
                alive[i] = t.up && !self.bern_dead[i];
            }
            self.cursor += 1;
        }
    }

    /// `true` when any compiled duty-cycle schedule exists.
    pub fn has_duty(&self) -> bool {
        !self.compiled.duty.is_empty()
    }

    /// `true` when any compiled churn episode exists.
    pub fn has_churn(&self) -> bool {
        !self.compiled.churn.is_empty()
    }

    /// `true` when `node` is inside a sleep window at `now`.
    pub fn node_asleep(&self, node: NodeId, now: f64) -> bool {
        self.compiled.asleep(node, now)
    }

    /// `true` when the directed link `from → to` is severed by a churn
    /// episode active at `now`.
    pub fn link_severed(&self, from: NodeId, to: NodeId, now: f64) -> bool {
        let key = link_key(from, to);
        self.compiled
            .churn
            .iter()
            .take_while(|w| w.start_s <= now)
            .any(|w| now < w.end_s && w.severed.binary_search(&key).is_ok())
    }

    /// The delivery-guarantee oracle.
    ///
    /// Computes ground-truth reachability from `source` on the faulted
    /// connectivity graph — nodes that were ever down (Bernoulli, crash,
    /// or blackout) and links ever severed by churn are removed — and
    /// classifies every still-`pending` destination:
    ///
    /// - dead destination → [`FailureCause::DestDead`] (justified);
    /// - unreachable destination → [`FailureCause::Disconnected`]
    ///   (justified);
    /// - reachable but undelivered → the proximate cause the event loop
    ///   recorded in `drop_cause` (a **protocol failure**), upgraded to
    ///   [`FailureCause::Truncated`] when the run hit the event cap and
    ///   no drop was recorded.
    ///
    /// The graph excision is pessimistic (a node down for *any* part of
    /// the run is removed for the whole run), so a `Disconnected` verdict
    /// may excuse a failure a lucky protocol could have dodged — but a
    /// *protocol failure* verdict is always sound: the destination was
    /// reachable the entire run. Duty-cycle sleep is transient and never
    /// excuses a failure.
    ///
    /// Results are appended to `out` in ascending destination order.
    #[allow(clippy::too_many_arguments)]
    pub fn classify_failures(
        &mut self,
        topo: &Topology,
        source: NodeId,
        has_events: bool,
        alive: &[bool],
        pending: &[bool],
        drop_cause: &[FailureCause],
        truncated: bool,
        out: &mut Vec<FailedDest>,
    ) {
        let n = topo.len();
        let node_down = |i: usize| {
            if has_events {
                self.bern_dead[i] || self.compiled.ever_down[i]
            } else {
                !alive[i]
            }
        };
        let check_links = has_events && !self.compiled.ever_severed.is_empty();

        self.reach.clear();
        self.reach.resize(n, false);
        self.stack.clear();
        self.reach[source.index()] = true;
        self.stack.push(source.0);
        while let Some(u) = self.stack.pop() {
            let u_id = NodeId(u);
            for &v in topo.neighbors(u_id) {
                if self.reach[v.index()] || node_down(v.index()) {
                    continue;
                }
                if check_links
                    && self
                        .compiled
                        .ever_severed
                        .binary_search(&link_key(u_id, v))
                        .is_ok()
                {
                    continue;
                }
                self.reach[v.index()] = true;
                self.stack.push(v.0);
            }
        }

        for (i, &p) in pending.iter().enumerate() {
            if !p {
                continue;
            }
            let cause = if node_down(i) {
                FailureCause::DestDead
            } else if !self.reach[i] {
                FailureCause::Disconnected
            } else if truncated && drop_cause[i] == FailureCause::NoRoute {
                FailureCause::Truncated
            } else {
                drop_cause[i]
            };
            out.push(FailedDest::new(NodeId(i as u32), cause));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_geom::{Aabb, Point};

    /// A 5-node line 0–1–2–3 plus an island at index 4.
    fn line_with_island() -> Topology {
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            Point::new(200.0, 0.0),
            Point::new(300.0, 0.0),
            Point::new(2000.0, 2000.0),
        ];
        Topology::from_positions(positions, Aabb::square(3000.0), 150.0)
    }

    fn classify(
        scratch: &mut FaultScratch,
        topo: &Topology,
        has_events: bool,
        alive: &[bool],
        pending: &[bool],
        truncated: bool,
    ) -> Vec<FailedDest> {
        let drop_cause = vec![FailureCause::NoRoute; topo.len()];
        let mut out = Vec::new();
        scratch.classify_failures(
            topo,
            NodeId(0),
            has_events,
            alive,
            pending,
            &drop_cause,
            truncated,
            &mut out,
        );
        out
    }

    #[test]
    fn oracle_justifies_disconnected_island() {
        let topo = line_with_island();
        let mut scratch = FaultScratch::new();
        let alive = vec![true; 5];
        let mut pending = vec![false; 5];
        pending[3] = true;
        pending[4] = true;
        let out = classify(&mut scratch, &topo, false, &alive, &pending, false);
        assert_eq!(
            out,
            vec![
                FailedDest::new(NodeId(3), FailureCause::NoRoute),
                FailedDest::new(NodeId(4), FailureCause::Disconnected),
            ]
        );
        assert!(
            !out[0].is_justified(),
            "reachable dest is a protocol failure"
        );
        assert!(out[1].is_justified());
    }

    #[test]
    fn oracle_blames_dead_relays_on_the_fault_model() {
        let topo = line_with_island();
        let mut scratch = FaultScratch::new();
        // Node 1 dead (Bernoulli path): 2 and 3 become unreachable, and 1
        // itself is DestDead.
        let alive = vec![true, false, true, true, true];
        let pending = vec![false, true, true, true, false];
        let out = classify(&mut scratch, &topo, false, &alive, &pending, false);
        assert_eq!(
            out,
            vec![
                FailedDest::new(NodeId(1), FailureCause::DestDead),
                FailedDest::new(NodeId(2), FailureCause::Disconnected),
                FailedDest::new(NodeId(3), FailureCause::Disconnected),
            ]
        );
    }

    #[test]
    fn oracle_upgrades_unrecorded_drops_to_truncated() {
        let topo = line_with_island();
        let mut scratch = FaultScratch::new();
        let alive = vec![true; 5];
        let mut pending = vec![false; 5];
        pending[2] = true;
        let out = classify(&mut scratch, &topo, false, &alive, &pending, true);
        assert_eq!(
            out,
            vec![FailedDest::new(NodeId(2), FailureCause::Truncated)]
        );
    }

    #[test]
    fn crash_timeline_applies_in_order_and_spares_the_source() {
        let topo = line_with_island();
        let plan = FaultPlan::none()
            .with_crash(NodeId(0), 0.0)
            .with_crash(NodeId(2), 1.0);
        let mut scratch = FaultScratch::new();
        let mut alive = vec![true; 5];
        scratch.begin_task(&plan, &topo, NodeId(0), &mut alive);
        assert!(alive[0], "source exempt from its own crash");
        assert!(alive[2], "future crash not yet applied");
        scratch.advance_to(0.5, NodeId(0), &mut alive);
        assert!(alive[2]);
        scratch.advance_to(1.0, NodeId(0), &mut alive);
        assert!(!alive[2], "crash at t=1 applied");
        // Oracle sees the crash as permanent: 3 is cut off behind node 2.
        let pending = vec![false, false, true, true, false];
        let out = classify(&mut scratch, &topo, true, &alive, &pending, false);
        assert_eq!(
            out,
            vec![
                FailedDest::new(NodeId(2), FailureCause::DestDead),
                FailedDest::new(NodeId(3), FailureCause::Disconnected),
            ]
        );
    }

    #[test]
    fn blackout_lifts_but_bernoulli_dead_stay_dead() {
        let topo = line_with_island();
        let plan = FaultPlan::none().with_blackout(
            FaultRegion::Rect {
                min: Point::new(50.0, -10.0),
                max: Point::new(250.0, 10.0),
            },
            0.0,
            2.0,
        );
        let mut scratch = FaultScratch::new();
        // Bernoulli already killed node 2.
        let mut alive = vec![true, true, false, true, true];
        scratch.begin_task(&plan, &topo, NodeId(0), &mut alive);
        assert!(!alive[1], "node 1 blacked out");
        assert!(!alive[2]);
        scratch.advance_to(2.0, NodeId(0), &mut alive);
        assert!(alive[1], "blackout lifted");
        assert!(!alive[2], "bernoulli death is permanent");
    }

    #[test]
    fn duty_cycle_sleeps_by_phase_and_full_on_is_inert() {
        let topo = line_with_island();
        let plan = FaultPlan::none().with_duty_cycle(1.0, 0.5);
        let mut scratch = FaultScratch::new();
        let mut alive = vec![true; 5];
        scratch.begin_task(&plan, &topo, NodeId(0), &mut alive);
        assert!(scratch.has_duty());
        for node in 0..5u32 {
            let id = NodeId(node);
            let phase = (node as f64 * PHASE_STRIDE).fract();
            assert!(
                !scratch.node_asleep(id, phase + 0.01),
                "awake at window start"
            );
            assert!(
                scratch.node_asleep(id, phase + 0.75),
                "asleep past on window"
            );
            assert!(!scratch.node_asleep(id, phase + 1.01), "awake next period");
        }
        let inert = FaultPlan::none().with_duty_cycle(1.0, 1.0);
        scratch.begin_task(&inert, &topo, NodeId(0), &mut alive);
        assert!(!scratch.has_duty(), "on_fraction = 1 compiles away");
    }

    #[test]
    fn compiled_plan_is_cached_across_tasks() {
        let topo = line_with_island();
        let plan = FaultPlan::none().with_crash(NodeId(2), 1.0);
        let mut scratch = FaultScratch::new();
        let mut alive = vec![true; 5];
        scratch.begin_task(&plan, &topo, NodeId(0), &mut alive);
        let key = scratch.cache_key;
        scratch.advance_to(5.0, NodeId(0), &mut alive);
        alive.iter_mut().for_each(|a| *a = true);
        scratch.begin_task(&plan, &topo, NodeId(0), &mut alive);
        assert_eq!(scratch.cache_key, key);
        assert_eq!(scratch.cursor, 0, "timeline rewinds per task");
        let other = plan.clone().with_crash(NodeId(3), 2.0);
        scratch.begin_task(&other, &topo, NodeId(0), &mut alive);
        assert_ne!(scratch.cache_key, key, "different plan recompiles");
    }

    #[test]
    fn churn_severs_links_symmetrically_and_only_during_the_window() {
        // Dense random topology so the walk has links to break.
        let topo = Topology::random(&gmp_net::TopologyConfig::new(500.0, 60, 150.0), 77);
        let plan = FaultPlan::none().with_link_churn(1.0, 30.0, (20.0, 40.0), (0.0, 0.5), 5);
        let mut scratch = FaultScratch::new();
        let mut alive = vec![true; topo.len()];
        scratch.begin_task(&plan, &topo, NodeId(0), &mut alive);
        assert!(scratch.has_churn());
        let s = &scratch;
        let severed: Vec<(NodeId, NodeId)> = (0..topo.len())
            .flat_map(|u| {
                let u_id = NodeId(u as u32);
                topo.neighbors(u_id)
                    .iter()
                    .filter(move |&&v| s.link_severed(u_id, v, 10.0))
                    .map(move |&v| (u_id, v))
            })
            .collect();
        assert!(!severed.is_empty(), "a 29 s churn episode breaks links");
        for &(u, v) in &severed {
            assert!(scratch.link_severed(v, u, 10.0), "severing is symmetric");
            assert!(!scratch.link_severed(u, v, 0.5), "before the window");
            assert!(!scratch.link_severed(u, v, 30.0), "after the window");
        }
    }
}
