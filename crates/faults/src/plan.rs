//! Fault plans: a deterministic schedule of failures for one simulation.

use gmp_geom::Point;
use gmp_net::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A spatial region a blackout carves out of the deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultRegion {
    /// All nodes within `radius` of `center` (inclusive).
    Disk {
        /// Blackout center.
        center: Point,
        /// Blackout radius, meters.
        radius: f64,
    },
    /// All nodes inside the axis-aligned rectangle (inclusive).
    Rect {
        /// Corner with the smallest coordinates.
        min: Point,
        /// Corner with the largest coordinates.
        max: Point,
    },
}

impl FaultRegion {
    /// `true` if `p` lies inside the region (boundaries included).
    pub fn contains(&self, p: Point) -> bool {
        match *self {
            FaultRegion::Disk { center, radius } => center.dist_sq(p) <= radius * radius,
            FaultRegion::Rect { min, max } => {
                p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y
            }
        }
    }
}

/// One timed fault in a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// `node` dies for good at `at_s` seconds of simulated time.
    Crash {
        /// The node that crashes.
        node: NodeId,
        /// Crash time, seconds (`0.0` = down from the start).
        at_s: f64,
    },
    /// Every node inside `region` is down during `[start_s, end_s)`,
    /// carving a void out of the topology mid-run.
    Blackout {
        /// The affected region.
        region: FaultRegion,
        /// Blackout onset, seconds.
        start_s: f64,
        /// Blackout end, seconds (`f64::INFINITY` = permanent).
        end_s: f64,
    },
    /// Periodic sleep: each node is awake for the first
    /// `on_fraction` of every `period_s` window, with a per-node phase
    /// offset so the network never sleeps in lockstep.
    DutyCycle {
        /// Sleep/wake period, seconds.
        period_s: f64,
        /// Fraction of each period spent awake, in `(0, 1]`.
        on_fraction: f64,
    },
    /// During `[start_s, end_s)`, links that a seeded
    /// [`RandomWaypoint`](gmp_net::mobility::RandomWaypoint) walk would have broken
    /// over the episode's duration are severed (both directions).
    LinkChurn {
        /// Episode start, seconds.
        start_s: f64,
        /// Episode end, seconds.
        end_s: f64,
        /// Waypoint speed range `(min, max)`, m/s.
        speed_mps: (f64, f64),
        /// Waypoint pause range `(min, max)`, seconds.
        pause_s: (f64, f64),
        /// Seed of the mobility walk driving the episode.
        seed: u64,
    },
}

/// A deterministic, seeded schedule of faults for one simulation run.
///
/// The plan has two layers, matching how the simulator consumes it:
///
/// 1. **Bernoulli knobs** (`node_failure_prob`, `link_loss_prob`) — the
///    legacy i.i.d. coin flips, sampled from the task RNG in the exact
///    draw order the runner always used, so fault-free and
///    Bernoulli-only plans are bit-identical to pre-plan runs.
/// 2. **Timed events** — compiled against a topology by
///    [`FaultScratch`](crate::FaultScratch) and applied as simulated time
///    advances. Events never consume task-RNG draws; any randomness they
///    need (mobility walks) comes from their own embedded seeds.
///
/// The source of a task is exempt from *node* faults — the legacy
/// contract "never the source" extends to crashes, blackouts, and
/// duty-cycle sleep — but not from link faults.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Probability an arbitrary non-source node is down for the whole
    /// task (i.i.d. per node, sampled once per task).
    pub node_failure_prob: f64,
    /// Probability an arbitrary packet copy is lost in flight (i.i.d.
    /// per delivery).
    pub link_loss_prob: f64,
    /// Timed fault events, applied in time order regardless of the order
    /// they were added.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: no faults of any kind. Runs under it are
    /// bit-identical to runs without a fault subsystem.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// `true` when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.node_failure_prob == 0.0 && self.link_loss_prob == 0.0 && self.events.is_empty()
    }

    /// `true` when the plan carries timed events (the part that needs
    /// compilation and a liveness timeline, as opposed to the Bernoulli
    /// knobs the runner samples inline).
    pub fn has_events(&self) -> bool {
        !self.events.is_empty()
    }

    /// Sets the Bernoulli node-failure probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn with_node_failure_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.node_failure_prob = p;
        self
    }

    /// Sets the Bernoulli link-loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn with_link_loss_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.link_loss_prob = p;
        self
    }

    /// Adds an arbitrary timed event.
    #[must_use]
    pub fn with_event(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Adds a node crash at `at_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `at_s` is negative or NaN.
    #[must_use]
    pub fn with_crash(self, node: NodeId, at_s: f64) -> Self {
        assert!(at_s >= 0.0, "crash time must be non-negative");
        self.with_event(FaultEvent::Crash { node, at_s })
    }

    /// Adds a regional blackout over `[start_s, end_s)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ start_s < end_s` (`end_s` may be infinite).
    #[must_use]
    pub fn with_blackout(self, region: FaultRegion, start_s: f64, end_s: f64) -> Self {
        assert!(start_s >= 0.0 && start_s < end_s, "bad blackout window");
        self.with_event(FaultEvent::Blackout {
            region,
            start_s,
            end_s,
        })
    }

    /// Adds a duty-cycle sleep schedule.
    ///
    /// # Panics
    ///
    /// Panics unless `period_s > 0` and `on_fraction` is in `(0, 1]`.
    #[must_use]
    pub fn with_duty_cycle(self, period_s: f64, on_fraction: f64) -> Self {
        assert!(period_s > 0.0, "duty period must be positive");
        assert!(
            on_fraction > 0.0 && on_fraction <= 1.0,
            "on fraction out of range"
        );
        self.with_event(FaultEvent::DutyCycle {
            period_s,
            on_fraction,
        })
    }

    /// Adds a mobility-driven link-churn episode over `[start_s, end_s)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ start_s < end_s < ∞` and the speed/pause ranges
    /// are valid for [`RandomWaypoint`](gmp_net::mobility::RandomWaypoint).
    #[must_use]
    pub fn with_link_churn(
        self,
        start_s: f64,
        end_s: f64,
        speed_mps: (f64, f64),
        pause_s: (f64, f64),
        seed: u64,
    ) -> Self {
        assert!(
            start_s >= 0.0 && start_s < end_s && end_s.is_finite(),
            "bad churn window"
        );
        assert!(
            speed_mps.0 > 0.0 && speed_mps.0 <= speed_mps.1,
            "bad speed range"
        );
        assert!(
            pause_s.0 >= 0.0 && pause_s.0 <= pause_s.1,
            "bad pause range"
        );
        self.with_event(FaultEvent::LinkChurn {
            start_s,
            end_s,
            speed_mps,
            pause_s,
            seed,
        })
    }

    /// A plan that crashes `round(fraction · node_count)` distinct
    /// non-source-biased nodes at `at_s`, chosen by a seeded shuffle —
    /// the campaign's fault-intensity dial. The runner still exempts the
    /// task source from node faults, so a crash landing on the source is
    /// ignored for that task.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn random_crashes(node_count: usize, fraction: f64, at_s: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
        let crashes = ((node_count as f64) * fraction).round() as usize;
        let mut ids: Vec<u32> = (0..node_count as u32).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        // Partial Fisher-Yates: the first `crashes` slots are a uniform
        // sample of distinct nodes.
        for i in 0..crashes.min(node_count) {
            let j = i + rng.gen_range(0..node_count - i);
            ids.swap(i, j);
        }
        let mut plan = FaultPlan::none();
        for &id in &ids[..crashes.min(node_count)] {
            plan = plan.with_crash(NodeId(id), at_s);
        }
        plan
    }

    /// Samples Bernoulli node failures into `alive`, never killing
    /// `source` — byte-for-byte the legacy runner loop, including the
    /// guard that consumes zero draws when the probability is `0`.
    pub fn sample_node_failures<R: Rng>(&self, rng: &mut R, source: NodeId, alive: &mut [bool]) {
        if self.node_failure_prob > 0.0 {
            for (i, a) in alive.iter_mut().enumerate() {
                if NodeId(i as u32) != source && rng.gen::<f64>() < self.node_failure_prob {
                    *a = false;
                }
            }
        }
    }

    /// Draws the Bernoulli link-loss verdict for one delivery; consumes
    /// zero draws when the probability is `0` (legacy contract).
    pub fn transmission_lost<R: Rng>(&self, rng: &mut R) -> bool {
        self.link_loss_prob > 0.0 && rng.gen::<f64>() < self.link_loss_prob
    }

    /// A structural fingerprint (FNV-1a over every field's bits), used to
    /// key the compiled-plan cache. Plans with equal fingerprints compile
    /// identically against the same topology.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.word(self.node_failure_prob.to_bits());
        h.word(self.link_loss_prob.to_bits());
        h.word(self.events.len() as u64);
        for ev in &self.events {
            match *ev {
                FaultEvent::Crash { node, at_s } => {
                    h.word(1);
                    h.word(node.0 as u64);
                    h.word(at_s.to_bits());
                }
                FaultEvent::Blackout {
                    region,
                    start_s,
                    end_s,
                } => {
                    h.word(2);
                    match region {
                        FaultRegion::Disk { center, radius } => {
                            h.word(21);
                            h.word(center.x.to_bits());
                            h.word(center.y.to_bits());
                            h.word(radius.to_bits());
                        }
                        FaultRegion::Rect { min, max } => {
                            h.word(22);
                            h.word(min.x.to_bits());
                            h.word(min.y.to_bits());
                            h.word(max.x.to_bits());
                            h.word(max.y.to_bits());
                        }
                    }
                    h.word(start_s.to_bits());
                    h.word(end_s.to_bits());
                }
                FaultEvent::DutyCycle {
                    period_s,
                    on_fraction,
                } => {
                    h.word(3);
                    h.word(period_s.to_bits());
                    h.word(on_fraction.to_bits());
                }
                FaultEvent::LinkChurn {
                    start_s,
                    end_s,
                    speed_mps,
                    pause_s,
                    seed,
                } => {
                    h.word(4);
                    h.word(start_s.to_bits());
                    h.word(end_s.to_bits());
                    h.word(speed_mps.0.to_bits());
                    h.word(speed_mps.1.to_bits());
                    h.word(pause_s.0.to_bits());
                    h.word(pause_s.1.to_bits());
                    h.word(seed);
                }
            }
        }
        h.finish()
    }
}

/// Minimal FNV-1a over u64 words.
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn word(&mut self, w: u64) {
        for byte in w.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_plan_is_empty_and_inert() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(!plan.has_events());
        let mut rng = StdRng::seed_from_u64(1);
        let mut alive = vec![true; 8];
        plan.sample_node_failures(&mut rng, NodeId(0), &mut alive);
        assert!(alive.iter().all(|&a| a));
        assert!(!plan.transmission_lost(&mut rng));
        // Zero draws consumed: identical to a fresh RNG.
        let mut fresh = StdRng::seed_from_u64(1);
        assert_eq!(rng.gen::<f64>(), fresh.gen::<f64>());
    }

    #[test]
    fn bernoulli_sampling_matches_legacy_draw_order() {
        let plan = FaultPlan::none().with_node_failure_prob(0.5);
        let mut rng = StdRng::seed_from_u64(7);
        let mut alive = vec![true; 16];
        plan.sample_node_failures(&mut rng, NodeId(3), &mut alive);
        // Replica of the legacy runner loop.
        let mut rng2 = StdRng::seed_from_u64(7);
        let mut expect = vec![true; 16];
        for (i, a) in expect.iter_mut().enumerate() {
            if NodeId(i as u32) != NodeId(3) && rng2.gen::<f64>() < 0.5 {
                *a = false;
            }
        }
        assert_eq!(alive, expect);
        assert!(alive[3], "source survives");
    }

    #[test]
    fn random_crashes_hits_the_requested_fraction() {
        let plan = FaultPlan::random_crashes(100, 0.2, 0.0, 9);
        assert_eq!(plan.events.len(), 20);
        let mut nodes: Vec<u32> = plan
            .events
            .iter()
            .map(|e| match e {
                FaultEvent::Crash { node, .. } => node.0,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), 20, "crashes are distinct");
        assert_eq!(plan, FaultPlan::random_crashes(100, 0.2, 0.0, 9));
        assert_ne!(plan, FaultPlan::random_crashes(100, 0.2, 0.0, 10));
    }

    #[test]
    fn fingerprint_separates_plans() {
        let a = FaultPlan::none().with_crash(NodeId(1), 2.0);
        let b = FaultPlan::none().with_crash(NodeId(1), 3.0);
        let c = FaultPlan::none().with_crash(NodeId(2), 2.0);
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_ne!(a.fingerprint(), FaultPlan::none().fingerprint());
        assert_ne!(
            FaultPlan::none().with_node_failure_prob(0.1).fingerprint(),
            FaultPlan::none().with_link_loss_prob(0.1).fingerprint()
        );
    }

    #[test]
    fn region_containment() {
        let disk = FaultRegion::Disk {
            center: Point::new(10.0, 10.0),
            radius: 5.0,
        };
        assert!(disk.contains(Point::new(13.0, 10.0)));
        assert!(disk.contains(Point::new(15.0, 10.0)));
        assert!(!disk.contains(Point::new(15.1, 10.0)));
        let rect = FaultRegion::Rect {
            min: Point::new(0.0, 0.0),
            max: Point::new(4.0, 2.0),
        };
        assert!(rect.contains(Point::new(4.0, 2.0)));
        assert!(!rect.contains(Point::new(4.0, 2.1)));
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn bad_probability_panics() {
        let _ = FaultPlan::none().with_node_failure_prob(1.5);
    }

    #[test]
    #[should_panic(expected = "bad blackout window")]
    fn inverted_blackout_panics() {
        let _ = FaultPlan::none().with_blackout(
            FaultRegion::Disk {
                center: Point::ORIGIN,
                radius: 1.0,
            },
            5.0,
            5.0,
        );
    }
}
