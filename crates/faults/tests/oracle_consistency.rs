//! Oracle-consistency certificate, protocol-independent.
//!
//! The delivery-guarantee oracle (`FaultScratch::classify_failures`) is
//! the judge behind every robustness campaign and behind the MCFR/GVG
//! guarantee certificates, so its verdicts must themselves be checked
//! against an independent model. These proptests rebuild the
//! pessimistically-faulted reachability graph from the raw fault plan —
//! without touching the oracle's compiled state — and assert that a
//! failure is *justified* exactly when the destination is genuinely dead
//! or unreachable, for any topology, crash/blackout plan, Bernoulli
//! sample, and recorded proximate cause.

use gmp_faults::{FailedDest, FailureCause, FaultEvent, FaultPlan, FaultRegion, FaultScratch};
use gmp_geom::Point;
use gmp_net::topology::TopologyConfig;
use gmp_net::{NodeId, Topology};
use proptest::prelude::*;

/// The reference "ever down" set: Bernoulli deaths plus every node named
/// by a crash (any time — the oracle is pessimistic) or covered by a
/// blackout region. Mirrors the documented excision rule, not the
/// oracle's code.
fn reference_down(topo: &Topology, plan: &FaultPlan, bern_dead: &[bool]) -> Vec<bool> {
    let mut down = bern_dead.to_vec();
    for ev in &plan.events {
        match *ev {
            FaultEvent::Crash { node, .. } => {
                if node.index() < topo.len() {
                    down[node.index()] = true;
                }
            }
            FaultEvent::Blackout { region, .. } => {
                for (i, dead) in down.iter_mut().enumerate() {
                    if region.contains(topo.pos(NodeId(i as u32))) {
                        *dead = true;
                    }
                }
            }
            FaultEvent::DutyCycle { .. } | FaultEvent::LinkChurn { .. } => {}
        }
    }
    down
}

/// Reference reachability from `source` over the unit-disk graph minus
/// the down nodes (the source itself always counts as reached).
fn reference_reach(topo: &Topology, down: &[bool], source: NodeId) -> Vec<bool> {
    let mut reach = vec![false; topo.len()];
    reach[source.index()] = true;
    let mut stack = vec![source];
    while let Some(u) = stack.pop() {
        for &v in topo.neighbors(u) {
            if !reach[v.index()] && !down[v.index()] {
                reach[v.index()] = true;
                stack.push(v);
            }
        }
    }
    reach
}

/// Runs one plan through `begin_task` → `advance_to(end)` →
/// `classify_failures` with every non-source node pending, exactly as the
/// task runner would at the end of a run.
#[allow(clippy::too_many_arguments)]
fn classify(
    topo: &Topology,
    plan: &FaultPlan,
    source: NodeId,
    bern_dead: &[bool],
    drop_cause: &[FailureCause],
    truncated: bool,
) -> Vec<FailedDest> {
    let mut scratch = FaultScratch::new();
    let mut alive: Vec<bool> = bern_dead.iter().map(|&d| !d).collect();
    if plan.has_events() {
        scratch.begin_task(plan, topo, source, &mut alive);
        scratch.advance_to(1e9, source, &mut alive);
    }
    let pending: Vec<bool> = (0..topo.len())
        .map(|i| NodeId(i as u32) != source)
        .collect();
    let mut out = Vec::new();
    scratch.classify_failures(
        topo,
        source,
        plan.has_events(),
        &alive,
        &pending,
        drop_cause,
        truncated,
        &mut out,
    );
    out
}

/// The proximate causes the event loop can record for a drop.
const PROXIMATE: [FailureCause; 5] = [
    FailureCause::NoRoute,
    FailureCause::DeadNode,
    FailureCause::LinkLoss,
    FailureCause::Collision,
    FailureCause::HopCap,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Justified ⟺ genuinely dead or unreachable, for crash/blackout
    /// plans (no link churn, so the reference graph is exact).
    #[test]
    fn justified_iff_unreachable_under_crashes_and_blackouts(
        topo_seed in 0u64..1000,
        n in 12usize..50,
        crash_frac in 0.0f64..0.4,
        crash_seed in 0u64..1000,
        late_crash in proptest::bool::ANY,
        with_blackout in proptest::bool::ANY,
        blackout in (0.0f64..600.0, 0.0f64..600.0, 50.0f64..250.0),
        bern_seed in 0u64..1000,
        cause_seed in 0usize..1000,
        truncated in proptest::bool::ANY,
    ) {
        let topo = Topology::random(&TopologyConfig::new(600.0, n, 150.0), topo_seed);
        let source = NodeId((topo_seed % n as u64) as u32);

        // Crashes at t = 0 or mid-run — the oracle is equally pessimistic
        // about both.
        let crash_at = if late_crash { 1.5 } else { 0.0 };
        let mut plan = FaultPlan::random_crashes(n, crash_frac, crash_at, crash_seed);
        if with_blackout {
            let (x, y, r) = blackout;
            plan = plan.with_blackout(
                FaultRegion::Rect {
                    min: Point::new(x - r, y - r),
                    max: Point::new(x + r, y + r),
                },
                0.5,
                2.0,
            );
        }

        // A deterministic pseudo-Bernoulli sample, source exempt.
        let bern_dead: Vec<bool> = (0..n)
            .map(|i| {
                NodeId(i as u32) != source
                    && (i as u64).wrapping_mul(0x9E37_79B9).wrapping_add(bern_seed) % 7 == 0
            })
            .collect();
        let drop_cause: Vec<FailureCause> = (0..n)
            .map(|i| PROXIMATE[(i + cause_seed) % PROXIMATE.len()])
            .collect();

        let out = classify(&topo, &plan, source, &bern_dead, &drop_cause, truncated);

        let down = reference_down(&topo, &plan, &bern_dead);
        let reach = reference_reach(&topo, &down, source);

        // One verdict per pending destination, in ascending order.
        prop_assert_eq!(out.len(), n - 1);
        for w in out.windows(2) {
            prop_assert!(w[0].dest < w[1].dest);
        }

        for f in &out {
            let i = f.dest.index();
            if down[i] {
                prop_assert_eq!(f.cause, FailureCause::DestDead, "dest {i} is down");
            } else if !reach[i] {
                prop_assert_eq!(f.cause, FailureCause::Disconnected, "dest {i} is cut off");
            } else if truncated && drop_cause[i] == FailureCause::NoRoute {
                prop_assert_eq!(f.cause, FailureCause::Truncated, "dest {i} unresolved at cap");
            } else {
                // Reachable: the oracle must pass the proximate cause
                // through untouched — a protocol failure.
                prop_assert_eq!(f.cause, drop_cause[i], "dest {i} is reachable");
            }
            // The headline equivalence: justified ⟺ genuinely impossible.
            prop_assert_eq!(
                f.is_justified(),
                down[i] || !reach[i],
                "dest {i}: verdict {:?} vs down={} reach={}",
                f.cause,
                down[i],
                reach[i]
            );
        }
    }

    /// With link churn the exact severed set lives inside the oracle, but
    /// two directions stay independently checkable: severing links never
    /// revives a node (DestDead is exact), and a destination unreachable
    /// even on the node-excised graph must be justified — removing links
    /// only shrinks reachability, so an unjustified verdict would be a
    /// soundness bug.
    #[test]
    fn churn_only_ever_shrinks_reachability(
        topo_seed in 0u64..500,
        n in 20usize..60,
        crash_frac in 0.0f64..0.3,
        churn_seed in 0u64..1000,
        truncated in proptest::bool::ANY,
    ) {
        let topo = Topology::random(&TopologyConfig::new(500.0, n, 150.0), topo_seed);
        let source = NodeId((topo_seed % n as u64) as u32);
        let plan = FaultPlan::random_crashes(n, crash_frac, 0.0, topo_seed)
            .with_link_churn(1.0, 30.0, (20.0, 40.0), (0.0, 0.5), churn_seed);

        let bern_dead = vec![false; n];
        let drop_cause = vec![FailureCause::NoRoute; n];
        let out = classify(&topo, &plan, source, &bern_dead, &drop_cause, truncated);

        let down = reference_down(&topo, &plan, &bern_dead);
        let reach = reference_reach(&topo, &down, source);

        prop_assert_eq!(out.len(), n - 1);
        for f in &out {
            let i = f.dest.index();
            prop_assert_eq!(f.cause == FailureCause::DestDead, down[i], "dest {i}");
            if !down[i] && !reach[i] {
                prop_assert!(
                    f.is_justified(),
                    "dest {i} unreachable without churn but verdict {:?}",
                    f.cause
                );
            }
        }
    }
}
