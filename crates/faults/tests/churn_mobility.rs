//! Integration test tying [`FaultEvent::LinkChurn`] episodes to the
//! mobility model that drives them: the links a churn window severs are
//! exactly the links a [`RandomWaypoint`] walk with the episode's
//! parameters would have broken over the episode's duration
//! (intersected with the static topology's adjacency), and
//! [`broken_link_fraction`] measures the same breakage on the walk's
//! own snapshots.

use gmp_faults::{FaultPlan, FaultScratch};
use gmp_net::mobility::{broken_link_fraction, RandomWaypoint};
use gmp_net::{NodeId, Topology, TopologyConfig};

const SPEED: (f64, f64) = (10.0, 30.0);
const PAUSE: (f64, f64) = (0.0, 1.0);
const START: f64 = 2.0;
const END: f64 = 10.0;
const WALK_SEED: u64 = 99;

fn setup() -> (Topology, FaultScratch, Vec<bool>) {
    let topo = Topology::random(&TopologyConfig::new(500.0, 60, 150.0), 11);
    let plan = FaultPlan::none().with_link_churn(START, END, SPEED, PAUSE, WALK_SEED);
    let mut scratch = FaultScratch::new();
    let mut alive = vec![true; topo.len()];
    scratch.begin_task(&plan, &topo, NodeId(0), &mut alive);
    (topo, scratch, alive)
}

/// Replicates the walk the episode embeds and returns the directed links
/// it breaks, filtered to the static topology's adjacency — the exact
/// severed set the compiler must produce.
fn expected_severed(topo: &Topology) -> (Vec<(NodeId, NodeId)>, f64) {
    let mut walk = RandomWaypoint::new(
        topo.area(),
        topo.len(),
        topo.radio_range(),
        SPEED,
        PAUSE,
        WALK_SEED,
    );
    let before = walk.snapshot();
    walk.advance(END - START);
    let after = walk.snapshot();
    let frac = broken_link_fraction(&before, &after);
    let mut severed = Vec::new();
    for u in 0..topo.len() {
        let u_id = NodeId(u as u32);
        for &v in before.neighbors(u_id) {
            if !after.neighbors(u_id).contains(&v) && topo.neighbors(u_id).contains(&v) {
                severed.push((u_id, v));
            }
        }
    }
    (severed, frac)
}

#[test]
fn churn_severs_exactly_the_links_the_walk_breaks() {
    let (topo, scratch, _alive) = setup();
    assert!(scratch.has_churn());
    let (severed, frac) = expected_severed(&topo);
    assert!(
        frac > 0.0,
        "walk breaks links over the episode (else the test is vacuous)"
    );
    assert!(
        !severed.is_empty(),
        "some broken links overlap the sim adjacency"
    );
    let mid = (START + END) / 2.0;
    for &(u, v) in &severed {
        assert!(
            scratch.link_severed(u, v, mid),
            "{u:?}->{v:?} down mid-window"
        );
        assert!(
            !scratch.link_severed(u, v, START - 0.5),
            "{u:?}->{v:?} up before the window"
        );
        assert!(
            !scratch.link_severed(u, v, END),
            "{u:?}->{v:?} restored at the window's exclusive end"
        );
    }
    // Every adjacency link the walk kept stays usable mid-window.
    let severed_set: std::collections::BTreeSet<(NodeId, NodeId)> =
        severed.iter().copied().collect();
    let mut kept_checked = 0usize;
    for u in 0..topo.len() {
        let u_id = NodeId(u as u32);
        for &v in topo.neighbors(u_id) {
            if !severed_set.contains(&(u_id, v)) {
                assert!(!scratch.link_severed(u_id, v, mid), "{u_id:?}->{v:?} kept");
                kept_checked += 1;
            }
        }
    }
    assert!(kept_checked > 0, "topology has unsevered links");
}

#[test]
fn severed_count_matches_the_walk_breakage() {
    let (topo, scratch, _alive) = setup();
    let (severed, _) = expected_severed(&topo);
    let mid = (START + END) / 2.0;
    let from_scratch: usize = (0..topo.len())
        .map(|u| {
            let u_id = NodeId(u as u32);
            topo.neighbors(u_id)
                .iter()
                .filter(|&&v| scratch.link_severed(u_id, v, mid))
                .count()
        })
        .sum();
    assert_eq!(from_scratch, severed.len());
}
