//! Axis-aligned bounding boxes.

use crate::Point;

/// An axis-aligned rectangle, used for deployment areas and spatial index
/// bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Corner with the smallest coordinates.
    pub min: Point,
    /// Corner with the largest coordinates.
    pub max: Point,
}

impl Aabb {
    /// Creates a box from two opposite corners (in any order).
    pub fn new(a: Point, b: Point) -> Self {
        Aabb {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// A square box `[0, side] × [0, side]` — the paper's deployment field
    /// is `Aabb::square(1000.0)`.
    pub fn square(side: f64) -> Self {
        Aabb::new(Point::ORIGIN, Point::new(side, side))
    }

    /// Box width.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Box height.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Box area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// The center of the box.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Returns `true` if `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// The smallest box containing both `self` and `p`.
    pub fn expanded_to(&self, p: Point) -> Aabb {
        Aabb {
            min: Point::new(self.min.x.min(p.x), self.min.y.min(p.y)),
            max: Point::new(self.max.x.max(p.x), self.max.y.max(p.y)),
        }
    }

    /// The smallest box containing a non-empty set of points, or `None` for
    /// an empty input.
    pub fn from_points<I>(points: I) -> Option<Aabb>
    where
        I: IntoIterator<Item = Point>,
    {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut b = Aabb::new(first, first);
        for p in it {
            b = b.expanded_to(p);
        }
        Some(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_corners() {
        let b = Aabb::new(Point::new(5.0, 1.0), Point::new(1.0, 5.0));
        assert_eq!(b.min, Point::new(1.0, 1.0));
        assert_eq!(b.max, Point::new(5.0, 5.0));
    }

    #[test]
    fn square_dimensions() {
        let b = Aabb::square(1000.0);
        assert_eq!(b.width(), 1000.0);
        assert_eq!(b.height(), 1000.0);
        assert_eq!(b.area(), 1_000_000.0);
        assert_eq!(b.center(), Point::new(500.0, 500.0));
    }

    #[test]
    fn contains_boundary_and_interior() {
        let b = Aabb::square(10.0);
        assert!(b.contains(Point::new(0.0, 0.0)));
        assert!(b.contains(Point::new(10.0, 10.0)));
        assert!(b.contains(Point::new(5.0, 5.0)));
        assert!(!b.contains(Point::new(-0.1, 5.0)));
        assert!(!b.contains(Point::new(5.0, 10.1)));
    }

    #[test]
    fn from_points_covers_all() {
        let pts = [
            Point::new(1.0, 7.0),
            Point::new(-2.0, 3.0),
            Point::new(4.0, -1.0),
        ];
        let b = Aabb::from_points(pts).unwrap();
        for p in pts {
            assert!(b.contains(p));
        }
        assert_eq!(b.min, Point::new(-2.0, -1.0));
        assert_eq!(b.max, Point::new(4.0, 7.0));
    }

    #[test]
    fn from_points_empty_is_none() {
        assert_eq!(Aabb::from_points(std::iter::empty()), None);
    }
}
