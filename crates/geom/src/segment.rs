//! Line segments and intersection tests.

use crate::predicates::{orientation, Orientation};
use crate::{Point, EPS};

/// A closed line segment between two points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// First endpoint.
    pub a: Point,
    /// Second endpoint.
    pub b: Point,
}

impl Segment {
    /// Creates a segment between two endpoints.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// The segment's length.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.dist(self.b)
    }

    /// The segment's midpoint.
    #[inline]
    pub fn midpoint(&self) -> Point {
        self.a.midpoint(self.b)
    }

    /// Returns `true` if `p` lies on this segment (within tolerance).
    pub fn contains(&self, p: Point) -> bool {
        if orientation(self.a, self.b, p) != Orientation::Collinear {
            return false;
        }
        let d = self.a.dist(p) + p.dist(self.b) - self.length();
        d.abs() <= EPS * self.length().max(1.0)
    }

    /// Returns `true` if the two closed segments intersect, including
    /// touching at endpoints and collinear overlap.
    pub fn intersects(&self, other: &Segment) -> bool {
        let (p1, q1, p2, q2) = (self.a, self.b, other.a, other.b);
        let o1 = orientation(p1, q1, p2);
        let o2 = orientation(p1, q1, q2);
        let o3 = orientation(p2, q2, p1);
        let o4 = orientation(p2, q2, q1);
        if o1 != o2 && o3 != o4 && o1 != Orientation::Collinear && o2 != Orientation::Collinear {
            return true;
        }
        (o1 == Orientation::Collinear && self.contains(p2))
            || (o2 == Orientation::Collinear && self.contains(q2))
            || (o3 == Orientation::Collinear && other.contains(p1))
            || (o4 == Orientation::Collinear && other.contains(q1))
    }

    /// Returns `true` if the two segments *properly* cross: they intersect
    /// in exactly one point that is interior to both.
    ///
    /// This is the test used to certify planarity of Gabriel/RNG graphs —
    /// edges that merely share an endpoint do not count as crossing.
    pub fn properly_crosses(&self, other: &Segment) -> bool {
        let (p1, q1, p2, q2) = (self.a, self.b, other.a, other.b);
        let o1 = orientation(p1, q1, p2);
        let o2 = orientation(p1, q1, q2);
        let o3 = orientation(p2, q2, p1);
        let o4 = orientation(p2, q2, q1);
        o1 != o2
            && o3 != o4
            && o1 != Orientation::Collinear
            && o2 != Orientation::Collinear
            && o3 != Orientation::Collinear
            && o4 != Orientation::Collinear
    }

    /// The intersection point of the two *lines* supporting the segments,
    /// or `None` when they are parallel (within tolerance).
    pub fn line_intersection(&self, other: &Segment) -> Option<Point> {
        let r = self.b - self.a;
        let s = other.b - other.a;
        let denom = r.cross(s);
        let scale = r.norm() * s.norm();
        if denom.abs() <= EPS * scale.max(1.0) {
            return None;
        }
        let t = (other.a - self.a).cross(s) / denom;
        Some(self.a + r * t)
    }

    /// Returns `true` if the two segments cross the line through `c`–`d`
    /// strictly between this segment's endpoints — used by face routing to
    /// detect when a perimeter edge crosses the source–destination line.
    pub fn crosses_line_of(&self, c: Point, d: Point) -> bool {
        let oc = orientation(c, d, self.a);
        let od = orientation(c, d, self.b);
        oc != od && oc != Orientation::Collinear && od != Orientation::Collinear
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn contains_endpoint_and_midpoint() {
        let s = seg(0.0, 0.0, 2.0, 2.0);
        assert!(s.contains(Point::new(1.0, 1.0)));
        assert!(s.contains(s.a));
        assert!(s.contains(s.b));
        assert!(!s.contains(Point::new(3.0, 3.0)));
        assert!(!s.contains(Point::new(1.0, 0.0)));
    }

    #[test]
    fn crossing_segments_intersect() {
        let s1 = seg(0.0, 0.0, 2.0, 2.0);
        let s2 = seg(0.0, 2.0, 2.0, 0.0);
        assert!(s1.intersects(&s2));
        assert!(s1.properly_crosses(&s2));
    }

    #[test]
    fn touching_at_endpoint_is_not_proper() {
        let s1 = seg(0.0, 0.0, 1.0, 1.0);
        let s2 = seg(1.0, 1.0, 2.0, 0.0);
        assert!(s1.intersects(&s2));
        assert!(!s1.properly_crosses(&s2));
    }

    #[test]
    fn disjoint_segments_do_not_intersect() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(0.0, 1.0, 1.0, 1.0);
        assert!(!s1.intersects(&s2));
        assert!(!s1.properly_crosses(&s2));
    }

    #[test]
    fn collinear_overlap_intersects_but_not_properly() {
        let s1 = seg(0.0, 0.0, 2.0, 0.0);
        let s2 = seg(1.0, 0.0, 3.0, 0.0);
        assert!(s1.intersects(&s2));
        assert!(!s1.properly_crosses(&s2));
    }

    #[test]
    fn t_junction_intersects_but_not_properly() {
        // s2 ends on the interior of s1.
        let s1 = seg(0.0, 0.0, 2.0, 0.0);
        let s2 = seg(1.0, 1.0, 1.0, 0.0);
        assert!(s1.intersects(&s2));
        assert!(!s1.properly_crosses(&s2));
    }

    #[test]
    fn line_intersection_basic() {
        let s1 = seg(0.0, 0.0, 1.0, 1.0);
        let s2 = seg(0.0, 1.0, 1.0, 0.0);
        let p = s1.line_intersection(&s2).unwrap();
        assert!(p.almost_eq(Point::new(0.5, 0.5)));
    }

    #[test]
    fn line_intersection_beyond_segments() {
        // Lines intersect outside the segments; still returned.
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(3.0, 1.0, 3.0, 2.0);
        let p = s1.line_intersection(&s2).unwrap();
        assert!(p.almost_eq(Point::new(3.0, 0.0)));
    }

    #[test]
    fn parallel_lines_have_no_intersection() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(0.0, 1.0, 1.0, 1.0);
        assert_eq!(s1.line_intersection(&s2), None);
    }

    #[test]
    fn crosses_line_of_detects_strict_crossing() {
        let s = seg(0.0, -1.0, 0.0, 1.0);
        assert!(s.crosses_line_of(Point::new(-1.0, 0.0), Point::new(1.0, 0.0)));
        let above = seg(0.0, 0.5, 0.0, 1.5);
        assert!(!above.crosses_line_of(Point::new(-1.0, 0.0), Point::new(1.0, 0.0)));
        // Endpoint on the line: not a strict crossing.
        let touch = seg(0.0, 0.0, 0.0, 1.0);
        assert!(!touch.crosses_line_of(Point::new(-1.0, 0.0), Point::new(1.0, 0.0)));
    }
}
