//! The exact Euclidean Steiner (Fermat/Torricelli) point of three points.
//!
//! The general Euclidean Steiner tree problem is NP-hard, but for exactly
//! three terminals the optimal junction — the point minimizing the sum of
//! distances to all three — has a classical closed-form construction
//! (Torricelli 1640s, restated by Neuberg \[24\] and Hwang et al. \[11\], the
//! references the paper cites). rrSTR (Section 3) calls this routine for
//! every candidate destination pair, so it must be fast and robust against
//! degenerate inputs.
//!
//! The rules:
//!
//! * If any interior angle of the triangle is ≥ 120°, the Fermat point is
//!   the vertex with that angle.
//! * Otherwise it is the unique interior point from which all three sides
//!   subtend 120°, found by intersecting two *Simpson lines* (each joins a
//!   vertex to the apex of the outward equilateral triangle erected on the
//!   opposite side).
//! * Coincident or collinear inputs degenerate to a vertex (see
//!   [`fermat_point`] for the case analysis).

use crate::point::Point;
use crate::predicates::{angle_at, orientation, Orientation};
use crate::EPS;

/// Interior angle threshold above which the Fermat point collapses onto a
/// vertex: 120° in radians.
pub const FERMAT_ANGLE: f64 = 2.0 * std::f64::consts::FRAC_PI_3;

/// How the Fermat point relates to the input triangle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FermatKind {
    /// The point is strictly interior to the triangle (all angles < 120°).
    Interior,
    /// The point coincides with input vertex 0, 1, or 2 (angle ≥ 120°,
    /// collinearity, or coincident inputs).
    AtVertex(u8),
}

/// Result of [`fermat_point`]: the optimal junction and how it degenerated
/// (if it did).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FermatPoint {
    /// The location of the Fermat point.
    pub location: Point,
    /// Whether the point is interior or collapsed onto a vertex.
    pub kind: FermatKind,
}

impl FermatPoint {
    /// The total length `d(t,a) + d(t,b) + d(t,c)` of the optimal 3-terminal
    /// Steiner tree.
    pub fn total_length(&self, a: Point, b: Point, c: Point) -> f64 {
        let t = self.location;
        t.dist(a) + t.dist(b) + t.dist(c)
    }
}

/// Computes the Fermat/Torricelli point of the triangle `(a, b, c)`.
///
/// The returned point minimizes `d(t,a) + d(t,b) + d(t,c)` over all points
/// `t` in the plane. Degenerate inputs are handled explicitly:
///
/// * two (or three) coincident points → the coincident location (doubling a
///   terminal pulls the optimum onto it);
/// * collinear points → the middle point of the three.
///
/// # Example
///
/// ```
/// use gmp_geom::{Point, fermat::{fermat_point, FermatKind}};
///
/// // Equilateral triangle: the Fermat point is the centroid.
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(1.0, 0.0);
/// let c = Point::new(0.5, 3f64.sqrt() / 2.0);
/// let f = fermat_point(a, b, c);
/// assert_eq!(f.kind, FermatKind::Interior);
/// assert!(f.location.almost_eq(Point::centroid([a, b, c]).unwrap()));
/// ```
pub fn fermat_point(a: Point, b: Point, c: Point) -> FermatPoint {
    // Coincident-point degeneracies. If b == c the objective is
    // d(t,a) + 2 d(t,b), minimized at t = b (and symmetrically).
    if b.almost_eq(c) {
        let kind = if a.almost_eq(b) {
            FermatKind::AtVertex(0)
        } else {
            FermatKind::AtVertex(1)
        };
        return FermatPoint { location: b, kind };
    }
    if a.almost_eq(b) {
        return FermatPoint {
            location: a,
            kind: FermatKind::AtVertex(0),
        };
    }
    if a.almost_eq(c) {
        return FermatPoint {
            location: a,
            kind: FermatKind::AtVertex(0),
        };
    }

    // Collinear: the middle point is optimal (any point on the middle
    // segment achieves the same sum only at the middle vertex once the
    // third distance is included).
    if orientation(a, b, c) == Orientation::Collinear {
        let idx = middle_of_collinear(a, b, c);
        let location = [a, b, c][idx as usize];
        return FermatPoint {
            location,
            kind: FermatKind::AtVertex(idx),
        };
    }

    // Obtuse-beyond-120° rule.
    if angle_at(a, b, c) >= FERMAT_ANGLE - EPS {
        return FermatPoint {
            location: a,
            kind: FermatKind::AtVertex(0),
        };
    }
    if angle_at(b, a, c) >= FERMAT_ANGLE - EPS {
        return FermatPoint {
            location: b,
            kind: FermatKind::AtVertex(1),
        };
    }
    if angle_at(c, a, b) >= FERMAT_ANGLE - EPS {
        return FermatPoint {
            location: c,
            kind: FermatKind::AtVertex(2),
        };
    }

    // Torricelli construction: intersect two Simpson lines.
    let apex_a = outward_equilateral_apex(b, c, a);
    let apex_b = outward_equilateral_apex(a, c, b);
    let l1 = crate::segment::Segment::new(a, apex_a);
    let l2 = crate::segment::Segment::new(b, apex_b);
    match l1.line_intersection(&l2) {
        Some(p) => FermatPoint {
            location: p,
            kind: FermatKind::Interior,
        },
        // Numerically parallel Simpson lines can only happen for inputs that
        // are collinear up to rounding; fall back to the middle vertex.
        None => {
            let idx = middle_of_collinear(a, b, c);
            FermatPoint {
                location: [a, b, c][idx as usize],
                kind: FermatKind::AtVertex(idx),
            }
        }
    }
}

/// Fermat points of a batch of triangles given in SoA form
/// (`a[i], b[i], c[i]`), written into `out[i]`.
///
/// Unlike the distance and ratio-bound kernels, the Fermat construction
/// is dominated by data-dependent branches (coincidence, collinearity,
/// and the three ≥ 120° vertex collapses), so the lanes cannot share
/// vector instructions; each lane simply runs the scalar
/// [`fermat_point`], which makes batch output bit-identical to the
/// scalar calls by construction. The batch form still pays off in bulk
/// evaluation (benchmarks, precomputation): the triangle data streams
/// through in SoA order instead of bouncing through call-site shuffles.
///
/// # Panics
///
/// Panics if the four slices differ in length.
pub fn fermat_point_batch(a: &[Point], b: &[Point], c: &[Point], out: &mut [FermatPoint]) {
    assert_eq!(a.len(), b.len(), "SoA lanes must agree in length");
    assert_eq!(a.len(), c.len(), "SoA lanes must agree in length");
    assert_eq!(a.len(), out.len(), "output must match the lane count");
    for i in 0..out.len() {
        out[i] = fermat_point(a[i], b[i], c[i]);
    }
}

/// The apex of the equilateral triangle erected on segment `p`–`q`, on the
/// side *away* from `opposite`.
fn outward_equilateral_apex(p: Point, q: Point, opposite: Point) -> Point {
    let third = std::f64::consts::FRAC_PI_3;
    let cand1 = q.rotate_around(p, third);
    let cand2 = q.rotate_around(p, -third);
    // Pick the candidate on the opposite side of line p–q from `opposite`.
    let side_opp = (q - p).cross(opposite - p);
    let side_c1 = (q - p).cross(cand1 - p);
    if side_opp * side_c1 < 0.0 {
        cand1
    } else {
        cand2
    }
}

/// Index (0, 1, or 2) of the point lying between the other two on their
/// common line.
fn middle_of_collinear(a: Point, b: Point, c: Point) -> u8 {
    let dab = a.dist_sq(b);
    let dac = a.dist_sq(c);
    let dbc = b.dist_sq(c);
    // The middle point is the one not incident to the longest span.
    if dab >= dac && dab >= dbc {
        2
    } else if dac >= dab && dac >= dbc {
        1
    } else {
        0
    }
}

/// Iteratively approximates the geometric median of three points with
/// Weiszfeld's algorithm.
///
/// This exists to *validate* [`fermat_point`] in tests and benchmarks; the
/// closed-form construction should always be preferred in protocol code.
pub fn weiszfeld(a: Point, b: Point, c: Point, iterations: usize) -> Point {
    let mut t = Point::centroid([a, b, c]).expect("three points");
    for _ in 0..iterations {
        let mut wsum = 0.0;
        let mut acc = crate::point::Vec2::default();
        let mut stuck = false;
        for p in [a, b, c] {
            let d = t.dist(p);
            if d < EPS {
                stuck = true;
                break;
            }
            let w = 1.0 / d;
            wsum += w;
            acc.x += p.x * w;
            acc.y += p.y * w;
        }
        if stuck || wsum == 0.0 {
            break;
        }
        let next = Point::new(acc.x / wsum, acc.y / wsum);
        if next.almost_eq(t) {
            return next;
        }
        t = next;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    const SQ3: f64 = 1.732_050_807_568_877_2;

    #[test]
    fn equilateral_fermat_is_centroid() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 0.0);
        let c = Point::new(1.0, SQ3);
        let f = fermat_point(a, b, c);
        assert_eq!(f.kind, FermatKind::Interior);
        assert!(f.location.almost_eq(Point::new(1.0, SQ3 / 3.0)));
    }

    #[test]
    fn interior_point_sees_all_sides_at_120_degrees() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(5.0, 1.0);
        let c = Point::new(2.0, 4.0);
        let f = fermat_point(a, b, c);
        assert_eq!(f.kind, FermatKind::Interior);
        let t = f.location;
        for (p, q) in [(a, b), (b, c), (a, c)] {
            let ang = angle_at(t, p, q);
            assert!(
                (ang - FERMAT_ANGLE).abs() < 1e-6,
                "angle {ang} should be 120°"
            );
        }
    }

    #[test]
    fn wide_angle_collapses_to_vertex() {
        // Angle at `a` is 180° - small: way beyond 120°.
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.5);
        let c = Point::new(-10.0, 0.5);
        let f = fermat_point(a, b, c);
        assert_eq!(f.kind, FermatKind::AtVertex(0));
        assert_eq!(f.location, a);
    }

    #[test]
    fn exactly_120_degrees_is_vertex() {
        // Construct a vertex with exactly 120°: rays at ±60° from the y axis.
        let a = Point::new(0.0, 0.0);
        let b = Point::new(SQ3, 1.0); // 30° above x-axis
        let c = Point::new(-SQ3, 1.0);
        // Angle at a between b and c is 120°.
        assert!((angle_at(a, b, c) - FERMAT_ANGLE).abs() < 1e-9);
        let f = fermat_point(a, b, c);
        assert_eq!(f.kind, FermatKind::AtVertex(0));
    }

    #[test]
    fn collinear_middle_point_wins() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 1.0);
        let c = Point::new(2.0, 2.0);
        let f = fermat_point(a, b, c);
        assert_eq!(f.location, b);
        assert_eq!(f.kind, FermatKind::AtVertex(1));
    }

    #[test]
    fn coincident_pair_degenerates() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 0.0);
        let f = fermat_point(a, b, b);
        assert_eq!(f.location, b);
        assert_eq!(f.kind, FermatKind::AtVertex(1));
        let f2 = fermat_point(a, a, b);
        assert_eq!(f2.location, a);
        assert_eq!(f2.kind, FermatKind::AtVertex(0));
    }

    #[test]
    fn all_coincident_degenerates() {
        let a = Point::new(1.0, 1.0);
        let f = fermat_point(a, a, a);
        assert_eq!(f.location, a);
        assert_eq!(f.kind, FermatKind::AtVertex(0));
    }

    #[test]
    fn matches_weiszfeld_on_generic_triangles() {
        let cases = [
            (
                Point::new(0.0, 0.0),
                Point::new(4.0, 0.0),
                Point::new(1.0, 3.0),
            ),
            (
                Point::new(-5.0, 2.0),
                Point::new(3.0, 7.0),
                Point::new(2.0, -4.0),
            ),
            (
                Point::new(100.0, 200.0),
                Point::new(300.0, 250.0),
                Point::new(180.0, 400.0),
            ),
        ];
        for (a, b, c) in cases {
            let exact = fermat_point(a, b, c);
            let approx = weiszfeld(a, b, c, 200);
            assert!(
                exact.location.dist(approx) < 1e-3,
                "closed form {} vs weiszfeld {}",
                exact.location,
                approx
            );
        }
    }

    #[test]
    fn fermat_total_never_exceeds_vertex_junctions() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(7.0, 1.0);
        let c = Point::new(3.0, 5.0);
        let f = fermat_point(a, b, c);
        let total = f.total_length(a, b, c);
        for v in [a, b, c] {
            let via_v = v.dist(a) + v.dist(b) + v.dist(c);
            assert!(total <= via_v + 1e-9);
        }
    }

    #[test]
    fn batch_covers_every_degenerate_case() {
        // One lane per special case `fermat_point` distinguishes:
        // coincident pair, all coincident, collinear, ≥ 120° at each
        // vertex, and a generic interior triangle.
        let a = vec![
            Point::new(0.0, 0.0),  // coincident b == c
            Point::new(1.0, 1.0),  // all coincident
            Point::new(0.0, 0.0),  // collinear
            Point::new(0.0, 0.0),  // wide angle at a
            Point::new(10.0, 0.5), // wide angle at b (= a-case swapped)
            Point::new(0.0, 0.0),  // generic interior
        ];
        let b = vec![
            Point::new(3.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(10.0, 0.5),
            Point::new(0.0, 0.0),
            Point::new(5.0, 1.0),
        ];
        let c = vec![
            Point::new(3.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
            Point::new(-10.0, 0.5),
            Point::new(-10.0, 0.5),
            Point::new(2.0, 4.0),
        ];
        let mut out = vec![
            FermatPoint {
                location: Point::ORIGIN,
                kind: FermatKind::Interior,
            };
            a.len()
        ];
        fermat_point_batch(&a, &b, &c, &mut out);
        for i in 0..a.len() {
            assert_eq!(out[i], fermat_point(a[i], b[i], c[i]), "lane {i}");
        }
        assert_eq!(out[0].kind, FermatKind::AtVertex(1));
        assert_eq!(out[1].kind, FermatKind::AtVertex(0));
        assert_eq!(out[2].kind, FermatKind::AtVertex(1));
        assert_eq!(out[3].kind, FermatKind::AtVertex(0));
        assert_eq!(out[4].kind, FermatKind::AtVertex(1));
        assert_eq!(out[5].kind, FermatKind::Interior);
    }

    #[test]
    fn invariant_under_rotation_and_translation() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(4.0, 1.0);
        let c = Point::new(1.0, 3.0);
        let f = fermat_point(a, b, c).location;
        let center = Point::new(-3.0, 9.0);
        let ang = 1.234;
        let shift = crate::point::Vec2::new(17.0, -5.0);
        let (ra, rb, rc) = (
            a.rotate_around(center, ang) + shift,
            b.rotate_around(center, ang) + shift,
            c.rotate_around(center, ang) + shift,
        );
        let rf = fermat_point(ra, rb, rc).location;
        let expected = f.rotate_around(center, ang) + shift;
        assert!(rf.dist(expected) < 1e-6, "rf={rf} expected={expected}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn point() -> impl Strategy<Value = Point> {
        (-1000.0..1000.0f64, -1000.0..1000.0f64).prop_map(|(x, y)| Point::new(x, y))
    }

    /// Triangles biased toward the degenerate branches `fermat_point`
    /// special-cases: coincident pairs, collinear triples, and wide
    /// (≥ 120°) vertex angles, alongside generic triangles. A selector
    /// lane picks the shape (the vendored proptest stand-in has no
    /// `prop_oneof`).
    fn triangle() -> impl Strategy<Value = (Point, Point, Point)> {
        (point(), point(), point(), -0.5..1.5f64, 0usize..7).prop_map(|(a, b, c, t, shape)| {
            match shape {
                // Generic triangle.
                0 => (a, b, c),
                // A coincident pair in each slot.
                1 => (a, b, b),
                2 => (a, a, b),
                3 => (a, b, a),
                // All three coincident.
                4 => (a, a, a),
                // Collinear: c on the line through a and b.
                5 => (a, b, a.lerp(b, t)),
                // Wide angle at the first vertex: b and c nearly
                // opposite across a.
                _ => (a, b, a - (b - a) * (1.0 + t * 0.1)),
            }
        })
    }

    proptest! {
        #[test]
        fn fermat_batch_is_bit_identical_to_scalar(
            tris in proptest::collection::vec(triangle(), 0..24),
        ) {
            let a: Vec<Point> = tris.iter().map(|t| t.0).collect();
            let b: Vec<Point> = tris.iter().map(|t| t.1).collect();
            let c: Vec<Point> = tris.iter().map(|t| t.2).collect();
            let mut out = vec![
                FermatPoint { location: Point::ORIGIN, kind: FermatKind::Interior };
                tris.len()
            ];
            fermat_point_batch(&a, &b, &c, &mut out);
            for (i, &(ta, tb, tc)) in tris.iter().enumerate() {
                let scalar = fermat_point(ta, tb, tc);
                prop_assert_eq!(out[i].kind, scalar.kind, "lane {} kind", i);
                prop_assert_eq!(
                    out[i].location.x.to_bits(), scalar.location.x.to_bits(),
                    "lane {} x: batch {} vs scalar {}", i, out[i].location, scalar.location
                );
                prop_assert_eq!(
                    out[i].location.y.to_bits(), scalar.location.y.to_bits(),
                    "lane {} y: batch {} vs scalar {}", i, out[i].location, scalar.location
                );
            }
        }
    }
}
