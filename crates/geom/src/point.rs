//! Points and vectors in the plane.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use crate::EPS;

/// A location in the 2-D plane, in meters.
///
/// In the paper's network model (Section 2) a node's location acts as both
/// its identifier and its network address, so `Point` is ubiquitous across
/// the workspace.
///
/// # Example
///
/// ```
/// use gmp_geom::Point;
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.dist(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// X coordinate in meters.
    pub x: f64,
    /// Y coordinate in meters.
    pub y: f64,
}

/// A displacement between two [`Point`]s.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
}

impl Point {
    /// The origin, `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(self, other: Point) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to `other` (avoids the square root when
    /// only comparisons are needed).
    #[inline]
    pub fn dist_sq(self, other: Point) -> f64 {
        (self - other).norm_sq()
    }

    /// Returns `true` if `other` lies within [`EPS`] of `self`.
    #[inline]
    pub fn almost_eq(self, other: Point) -> bool {
        self.dist_sq(other) <= EPS * EPS
    }

    /// The midpoint of the segment from `self` to `other`.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        self + (other - self) * t
    }

    /// The centroid (arithmetic mean) of a set of points.
    ///
    /// GMP's perimeter mode routes toward the *average* location of the void
    /// destinations (Section 4.1, step 2), which is exactly this function.
    ///
    /// Returns `None` for an empty input.
    pub fn centroid<I>(points: I) -> Option<Point>
    where
        I: IntoIterator<Item = Point>,
    {
        let mut sum = Vec2::default();
        let mut n = 0usize;
        for p in points {
            sum.x += p.x;
            sum.y += p.y;
            n += 1;
        }
        if n == 0 {
            None
        } else {
            Some(Point::new(sum.x / n as f64, sum.y / n as f64))
        }
    }

    /// Rotates `self` around `center` by `angle` radians (counterclockwise).
    pub fn rotate_around(self, center: Point, angle: f64) -> Point {
        let (sin, cos) = angle.sin_cos();
        let v = self - center;
        center + Vec2::new(v.x * cos - v.y * sin, v.x * sin + v.y * cos)
    }

    /// Returns `true` if all coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Vec2 {
    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean length.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared Euclidean length.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z-component of the 3-D cross product (signed parallelogram area).
    ///
    /// Positive when `other` is counterclockwise from `self`.
    #[inline]
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// The unit vector in the same direction, or `None` for a (near-)zero
    /// vector.
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        if n <= EPS {
            None
        } else {
            Some(self / n)
        }
    }

    /// The angle of this vector measured counterclockwise from the positive
    /// x-axis, in `(-π, π]`.
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// The unsigned angle between two vectors, in `[0, π]`.
    ///
    /// Returns `0.0` if either vector is (near-)zero.
    pub fn angle_between(self, other: Vec2) -> f64 {
        let d = self.norm() * other.norm();
        if d <= EPS * EPS {
            return 0.0;
        }
        let c = (self.dot(other) / d).clamp(-1.0, 1.0);
        c.acos()
    }

    /// The vector rotated 90° counterclockwise.
    #[inline]
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }
}

/// Distances from `origin` to a batch of points given in SoA form
/// (`xs[i], ys[i]`), written into `out[i]`.
///
/// Each lane computes exactly `origin.dist(Point::new(xs[i], ys[i]))`:
/// the subtraction order matches [`Point::sub`] (`origin − p`), the two
/// squares are sign-insensitive, and Rust never contracts `a*a + b*b`
/// into an FMA, so every output is bit-identical to the scalar call.
/// The loop body is branch-free over independent lanes, which is what
/// lets LLVM autovectorize it (including the `sqrt`) — the reason this
/// exists next to the scalar [`Point::dist`].
///
/// # Panics
///
/// Panics if the three slices differ in length.
pub fn dist_batch(origin: Point, xs: &[f64], ys: &[f64], out: &mut [f64]) {
    assert_eq!(xs.len(), ys.len(), "SoA lanes must agree in length");
    assert_eq!(xs.len(), out.len(), "output must match the lane count");
    for i in 0..out.len() {
        let dx = origin.x - xs[i];
        let dy = origin.y - ys[i];
        out[i] = (dx * dx + dy * dy).sqrt();
    }
}

/// The counterclockwise angular sweep from direction `from` to direction
/// `to`, in `[0, 2π)`.
///
/// This is the primitive behind the right-hand rule in perimeter routing:
/// the next edge is the one with the smallest *clockwise* sweep from the
/// reference direction, i.e. the largest counterclockwise sweep.
pub fn ccw_sweep(from: Vec2, to: Vec2) -> f64 {
    let a = to.angle() - from.angle();
    let two_pi = std::f64::consts::TAU;
    let mut a = a % two_pi;
    if a < 0.0 {
        a += two_pi;
    }
    a
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{:.3}, {:.3}>", self.x, self.y)
    }
}

impl Sub for Point {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Point) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add<Vec2> for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Vec2) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub<Vec2> for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Vec2) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl AddAssign<Vec2> for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl SubAssign<Vec2> for Point {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn distance_is_symmetric_and_positive() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-3.0, 5.0);
        assert_eq!(a.dist(b), b.dist(a));
        assert!(a.dist(b) > 0.0);
        assert_eq!(a.dist(a), 0.0);
    }

    #[test]
    fn dist_sq_matches_dist() {
        let a = Point::new(2.0, 7.0);
        let b = Point::new(9.0, -1.0);
        assert!((a.dist(b).powi(2) - a.dist_sq(b)).abs() < 1e-9);
    }

    #[test]
    fn midpoint_and_lerp_agree() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.midpoint(b), a.lerp(b, 0.5));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
    }

    #[test]
    fn centroid_of_square_is_center() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ];
        let c = Point::centroid(pts).unwrap();
        assert!(c.almost_eq(Point::new(1.0, 1.0)));
    }

    #[test]
    fn centroid_of_empty_is_none() {
        assert_eq!(Point::centroid(std::iter::empty()), None);
    }

    #[test]
    fn rotate_quarter_turn() {
        let p = Point::new(1.0, 0.0);
        let r = p.rotate_around(Point::ORIGIN, FRAC_PI_2);
        assert!(r.almost_eq(Point::new(0.0, 1.0)));
    }

    #[test]
    fn rotation_preserves_distance_to_center() {
        let c = Point::new(3.0, -2.0);
        let p = Point::new(10.0, 5.0);
        for k in 0..8 {
            let r = p.rotate_around(c, k as f64 * PI / 4.0);
            assert!((r.dist(c) - p.dist(c)).abs() < 1e-9);
        }
    }

    #[test]
    fn cross_sign_encodes_orientation() {
        let e1 = Vec2::new(1.0, 0.0);
        let e2 = Vec2::new(0.0, 1.0);
        assert!(e1.cross(e2) > 0.0);
        assert!(e2.cross(e1) < 0.0);
        assert_eq!(e1.cross(e1), 0.0);
    }

    #[test]
    fn angle_between_is_unsigned() {
        let e1 = Vec2::new(1.0, 0.0);
        let e2 = Vec2::new(0.0, 1.0);
        assert!((e1.angle_between(e2) - FRAC_PI_2).abs() < 1e-12);
        assert!((e2.angle_between(e1) - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn angle_between_zero_vector_is_zero() {
        assert_eq!(Vec2::default().angle_between(Vec2::new(1.0, 0.0)), 0.0);
    }

    #[test]
    fn ccw_sweep_quadrants() {
        let e1 = Vec2::new(1.0, 0.0);
        assert!((ccw_sweep(e1, Vec2::new(0.0, 1.0)) - FRAC_PI_2).abs() < 1e-12);
        assert!((ccw_sweep(e1, Vec2::new(-1.0, 0.0)) - PI).abs() < 1e-12);
        assert!((ccw_sweep(e1, Vec2::new(0.0, -1.0)) - 3.0 * FRAC_PI_2).abs() < 1e-12);
        assert_eq!(ccw_sweep(e1, e1), 0.0);
    }

    #[test]
    fn normalized_zero_is_none() {
        assert_eq!(Vec2::default().normalized(), None);
        let n = Vec2::new(3.0, 4.0).normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perp_is_ccw_quarter_turn() {
        let v = Vec2::new(2.0, 1.0);
        let p = v.perp();
        assert!((v.dot(p)).abs() < 1e-12);
        assert!(v.cross(p) > 0.0);
    }

    #[test]
    fn point_vector_arithmetic_roundtrip() {
        let a = Point::new(1.5, -2.5);
        let v = Vec2::new(0.5, 4.0);
        assert_eq!((a + v) - v, a);
        let mut b = a;
        b += v;
        b -= v;
        assert_eq!(b, a);
    }

    #[test]
    fn conversions_roundtrip() {
        let p = Point::from((1.0, 2.0));
        let t: (f64, f64) = p.into();
        assert_eq!(t, (1.0, 2.0));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Point::new(1.0, 2.0)).is_empty());
        assert!(!format!("{}", Vec2::new(1.0, 2.0)).is_empty());
    }

    #[test]
    fn dist_batch_empty_is_a_no_op() {
        dist_batch(Point::ORIGIN, &[], &[], &mut []);
    }

    #[test]
    #[should_panic(expected = "lane")]
    fn dist_batch_rejects_mismatched_lanes() {
        dist_batch(Point::ORIGIN, &[1.0], &[], &mut [0.0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn dist_batch_is_bit_identical_to_scalar(
            ox in -1000.0..1000.0f64,
            oy in -1000.0..1000.0f64,
            lanes in proptest::collection::vec(
                (-1000.0..1000.0f64, -1000.0..1000.0f64), 0..40,
            ),
            dup in proptest::bool::ANY,
        ) {
            // Includes the coincident lane (distance exactly 0) when `dup`
            // copies the origin into the batch.
            let origin = Point::new(ox, oy);
            let mut xs: Vec<f64> = lanes.iter().map(|&(x, _)| x).collect();
            let mut ys: Vec<f64> = lanes.iter().map(|&(_, y)| y).collect();
            if dup {
                xs.push(ox);
                ys.push(oy);
            }
            let mut out = vec![0.0; xs.len()];
            dist_batch(origin, &xs, &ys, &mut out);
            for i in 0..xs.len() {
                let scalar = origin.dist(Point::new(xs[i], ys[i]));
                prop_assert_eq!(
                    out[i].to_bits(),
                    scalar.to_bits(),
                    "lane {} diverged: batch {} vs scalar {}",
                    i, out[i], scalar
                );
            }
        }
    }
}
