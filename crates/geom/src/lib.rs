//! 2-D computational geometry substrate for the GMP reproduction.
//!
//! This crate provides the geometric primitives the rest of the workspace is
//! built on: [`Point`] and [`Vec2`] types, orientation predicates, segment
//! intersection, axis-aligned bounding boxes, and — most importantly for the
//! paper — the exact Euclidean Steiner (Fermat/Torricelli) point of three
//! points ([`fermat::fermat_point`]), which is the kernel of the rrSTR
//! heuristic (Section 3 of the paper).
//!
//! All coordinates are `f64` meters. The crate has zero dependencies.
//!
//! # Example
//!
//! ```
//! use gmp_geom::{Point, fermat::fermat_point};
//!
//! let s = Point::new(0.0, 0.0);
//! let u = Point::new(10.0, 0.0);
//! let v = Point::new(5.0, 8.0);
//! let t = fermat_point(s, u, v).location;
//! // The Fermat point minimizes total distance to the three vertices, so it
//! // is no worse than using any vertex as the junction.
//! let total = t.dist(s) + t.dist(u) + t.dist(v);
//! assert!(total <= s.dist(u) + s.dist(v) + 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aabb;
pub mod fermat;
pub mod point;
pub mod predicates;
pub mod region;
pub mod segment;

pub use aabb::Aabb;
pub use fermat::{fermat_point, fermat_point_batch, FermatKind, FermatPoint};
pub use point::{dist_batch, Point, Vec2};
pub use predicates::Orientation;
pub use region::{convex_hull, Region};
pub use segment::Segment;

/// Tolerance used for "collocated" tests throughout the workspace, in meters.
///
/// The paper's field is 1000 m × 1000 m with a 150 m radio range; one
/// micrometer is far below any physically meaningful distinction while being
/// comfortably above `f64` rounding noise for coordinates of this magnitude.
pub const EPS: f64 = 1e-6;

/// Returns `true` if two scalar values are within [`EPS`] of each other.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS
}
