//! Orientation and incidence predicates.

use crate::{Point, EPS};

/// The orientation of an ordered point triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// The triple makes a left (counterclockwise) turn.
    CounterClockwise,
    /// The triple makes a right (clockwise) turn.
    Clockwise,
    /// The three points are collinear (within tolerance).
    Collinear,
}

/// Classifies the turn made at `b` when walking `a → b → c`.
///
/// Uses a tolerance scaled by the magnitude of the coordinates so that the
/// classification is stable for both millimeter- and kilometer-scale inputs.
pub fn orientation(a: Point, b: Point, c: Point) -> Orientation {
    let v = (b - a).cross(c - a);
    // Scale tolerance with the squared extent of the triangle to keep the
    // predicate meaningful across coordinate magnitudes.
    let scale = (b - a).norm() * (c - a).norm();
    let tol = EPS * scale.max(1.0);
    if v > tol {
        Orientation::CounterClockwise
    } else if v < -tol {
        Orientation::Clockwise
    } else {
        Orientation::Collinear
    }
}

/// Returns `true` if the triple `a, b, c` is collinear within tolerance.
#[inline]
pub fn collinear(a: Point, b: Point, c: Point) -> bool {
    orientation(a, b, c) == Orientation::Collinear
}

/// The interior angle at vertex `apex` of the triangle `(apex, a, b)`,
/// in `[0, π]` radians.
///
/// Returns `0.0` when `a` or `b` coincides with `apex`.
pub fn angle_at(apex: Point, a: Point, b: Point) -> f64 {
    (a - apex).angle_between(b - apex)
}

/// Returns `true` if point `p` lies strictly inside the disk with diameter
/// `a`–`b` (the Gabriel-graph emptiness test).
///
/// The Gabriel graph keeps edge `(a, b)` iff no other node lies inside this
/// disk; see `gmp-net`'s planarization module.
pub fn in_diametral_disk(p: Point, a: Point, b: Point) -> bool {
    let center = a.midpoint(b);
    let r_sq = a.dist_sq(b) / 4.0;
    p.dist_sq(center) < r_sq - EPS
}

/// Returns `true` if point `p` lies strictly inside the lune of `a`–`b`
/// (the Relative Neighborhood Graph emptiness test): the intersection of the
/// two disks of radius `|ab|` centered at `a` and at `b`.
pub fn in_lune(p: Point, a: Point, b: Point) -> bool {
    let d_sq = a.dist_sq(b);
    p.dist_sq(a) < d_sq - EPS && p.dist_sq(b) < d_sq - EPS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orientation_basic() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        assert_eq!(
            orientation(a, b, Point::new(1.0, 1.0)),
            Orientation::CounterClockwise
        );
        assert_eq!(
            orientation(a, b, Point::new(1.0, -1.0)),
            Orientation::Clockwise
        );
        assert_eq!(
            orientation(a, b, Point::new(2.0, 0.0)),
            Orientation::Collinear
        );
    }

    #[test]
    fn orientation_is_antisymmetric() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 1.0);
        let c = Point::new(1.0, 2.0);
        assert_eq!(orientation(a, b, c), Orientation::CounterClockwise);
        assert_eq!(orientation(a, c, b), Orientation::Clockwise);
    }

    #[test]
    fn collinear_scales_with_magnitude() {
        // Nearly collinear at kilometer scale.
        let a = Point::new(0.0, 0.0);
        let b = Point::new(500.0, 500.0);
        let c = Point::new(1000.0, 1000.0 + 1e-9);
        assert!(collinear(a, b, c));
    }

    #[test]
    fn angle_at_right_triangle() {
        let apex = Point::new(0.0, 0.0);
        let a = Point::new(1.0, 0.0);
        let b = Point::new(0.0, 1.0);
        assert!((angle_at(apex, a, b) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn angle_at_degenerate_is_zero() {
        let apex = Point::new(1.0, 1.0);
        assert_eq!(angle_at(apex, apex, Point::new(2.0, 2.0)), 0.0);
    }

    #[test]
    fn diametral_disk_membership() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 0.0);
        assert!(in_diametral_disk(Point::new(1.0, 0.5), a, b));
        assert!(!in_diametral_disk(Point::new(1.0, 1.5), a, b));
        // On the boundary (distance exactly r): not strictly inside.
        assert!(!in_diametral_disk(Point::new(1.0, 1.0), a, b));
        // Endpoints are on the boundary, not inside.
        assert!(!in_diametral_disk(a, a, b));
    }

    #[test]
    fn lune_membership() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 0.0);
        // Midpoint is deep inside the lune.
        assert!(in_lune(Point::new(1.0, 0.0), a, b));
        // A point close to `a` but far from `b` is outside.
        assert!(!in_lune(Point::new(-0.5, 0.0), a, b));
        // The lune is contained in the diametral disk test's complement
        // direction: everything in the lune is within |ab| of both ends.
        assert!(in_lune(Point::new(1.0, 0.9), a, b));
        assert!(!in_lune(Point::new(1.0, 1.9), a, b));
    }

    #[test]
    fn lune_contains_diametral_disk() {
        // Classic fact: the diametral disk is a subset of the lune, hence
        // RNG ⊆ Gabriel graph. Spot check a grid of points.
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 0.0);
        for i in -20..=40 {
            for j in -20..=20 {
                let p = Point::new(i as f64 * 0.1, j as f64 * 0.1);
                if in_diametral_disk(p, a, b) {
                    assert!(in_lune(p, a, b), "point {p} in disk but not lune");
                }
            }
        }
    }
}
