//! Geographic regions for geocasting.
//!
//! Geocasting \[15, 2, 28\] addresses packets to a *region* rather than a
//! destination list. This module provides the region geometry: circles,
//! rectangles, and convex polygons, with containment tests and reference
//! points for routing.

use crate::aabb::Aabb;
use crate::point::Point;
use crate::predicates::{orientation, Orientation};

/// A geocast target region.
#[derive(Debug, Clone, PartialEq)]
pub enum Region {
    /// A disk.
    Circle {
        /// Center of the disk.
        center: Point,
        /// Radius in meters.
        radius: f64,
    },
    /// An axis-aligned rectangle.
    Rect(Aabb),
    /// A convex polygon; vertices must be in counterclockwise order.
    ConvexPolygon(Vec<Point>),
}

impl Region {
    /// Creates a convex polygon region from counterclockwise vertices.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 3 vertices are given or they are not in
    /// counterclockwise convex position.
    pub fn convex_polygon(vertices: Vec<Point>) -> Self {
        assert!(vertices.len() >= 3, "polygon needs at least 3 vertices");
        let n = vertices.len();
        for i in 0..n {
            let (a, b, c) = (vertices[i], vertices[(i + 1) % n], vertices[(i + 2) % n]);
            assert_ne!(
                orientation(a, b, c),
                Orientation::Clockwise,
                "vertices must be convex and counterclockwise"
            );
        }
        Region::ConvexPolygon(vertices)
    }

    /// Returns `true` if `p` lies inside the region (boundary included).
    pub fn contains(&self, p: Point) -> bool {
        match self {
            Region::Circle { center, radius } => p.dist_sq(*center) <= radius * radius,
            Region::Rect(r) => r.contains(p),
            Region::ConvexPolygon(vs) => {
                let n = vs.len();
                (0..n).all(|i| orientation(vs[i], vs[(i + 1) % n], p) != Orientation::Clockwise)
            }
        }
    }

    /// A representative interior point, used as the routing target when
    /// approaching the region from outside.
    pub fn anchor(&self) -> Point {
        match self {
            Region::Circle { center, .. } => *center,
            Region::Rect(r) => r.center(),
            Region::ConvexPolygon(vs) => {
                Point::centroid(vs.iter().copied()).expect("non-empty polygon")
            }
        }
    }

    /// The smallest axis-aligned box containing the region.
    pub fn bounding_box(&self) -> Aabb {
        match self {
            Region::Circle { center, radius } => Aabb::new(
                Point::new(center.x - radius, center.y - radius),
                Point::new(center.x + radius, center.y + radius),
            ),
            Region::Rect(r) => *r,
            Region::ConvexPolygon(vs) => {
                Aabb::from_points(vs.iter().copied()).expect("non-empty polygon")
            }
        }
    }
}

/// The convex hull of a point set (Andrew's monotone chain), returned in
/// counterclockwise order — the natural way to build a
/// [`Region::ConvexPolygon`] covering a set of sensors.
///
/// Returns fewer than 3 points for degenerate inputs (collinear or tiny
/// sets).
pub fn convex_hull(points: &[Point]) -> Vec<Point> {
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
    pts.dedup_by(|a, b| a.almost_eq(*b));
    if pts.len() < 3 {
        return pts;
    }
    let mut hull: Vec<Point> = Vec::with_capacity(pts.len() * 2);
    // Lower hull.
    for &p in &pts {
        while hull.len() >= 2
            && orientation(hull[hull.len() - 2], hull[hull.len() - 1], p)
                != Orientation::CounterClockwise
        {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len
            && orientation(hull[hull.len() - 2], hull[hull.len() - 1], p)
                != Orientation::CounterClockwise
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // last point equals the first
    hull
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circle_containment() {
        let r = Region::Circle {
            center: Point::new(10.0, 10.0),
            radius: 5.0,
        };
        assert!(r.contains(Point::new(12.0, 12.0)));
        assert!(r.contains(Point::new(15.0, 10.0))); // boundary
        assert!(!r.contains(Point::new(16.0, 10.0)));
        assert_eq!(r.anchor(), Point::new(10.0, 10.0));
        assert_eq!(
            r.bounding_box(),
            Aabb::new(Point::new(5.0, 5.0), Point::new(15.0, 15.0))
        );
    }

    #[test]
    fn rect_containment() {
        let r = Region::Rect(Aabb::square(10.0));
        assert!(r.contains(Point::new(5.0, 5.0)));
        assert!(!r.contains(Point::new(11.0, 5.0)));
        assert_eq!(r.anchor(), Point::new(5.0, 5.0));
    }

    #[test]
    fn polygon_containment() {
        let tri = Region::convex_polygon(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(5.0, 10.0),
        ]);
        assert!(tri.contains(Point::new(5.0, 3.0)));
        assert!(tri.contains(Point::new(0.0, 0.0))); // vertex
        assert!(tri.contains(Point::new(5.0, 0.0))); // edge
        assert!(!tri.contains(Point::new(9.0, 8.0)));
        assert!(tri.bounding_box().contains(Point::new(5.0, 10.0)));
    }

    #[test]
    #[should_panic(expected = "counterclockwise")]
    fn clockwise_polygon_rejected() {
        Region::convex_polygon(vec![
            Point::new(0.0, 0.0),
            Point::new(5.0, 10.0),
            Point::new(10.0, 0.0),
        ]);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_polygon_rejected() {
        Region::convex_polygon(vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)]);
    }

    #[test]
    fn hull_of_square_with_interior_points() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
            Point::new(5.0, 5.0),
            Point::new(3.0, 7.0),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        // Counterclockwise and convex: valid polygon region.
        let region = Region::convex_polygon(hull);
        for p in &pts {
            assert!(region.contains(*p));
        }
    }

    #[test]
    fn hull_of_collinear_points_degenerates() {
        let pts: Vec<Point> = (0..5).map(|i| Point::new(i as f64, i as f64)).collect();
        let hull = convex_hull(&pts);
        assert!(
            hull.len() <= 2,
            "collinear hull should degenerate: {hull:?}"
        );
    }

    #[test]
    fn hull_is_invariant_to_input_order() {
        let mut pts = vec![
            Point::new(2.0, 3.0),
            Point::new(9.0, 1.0),
            Point::new(5.0, 9.0),
            Point::new(1.0, 1.0),
            Point::new(7.0, 6.0),
        ];
        let h1 = convex_hull(&pts);
        pts.reverse();
        let h2 = convex_hull(&pts);
        assert_eq!(h1.len(), h2.len());
        // Same vertex set.
        for p in &h1 {
            assert!(h2.iter().any(|q| q.almost_eq(*p)));
        }
    }
}
