//! Property-based tests for the geometry kernels.

use gmp_geom::fermat::{fermat_point, weiszfeld};
use gmp_geom::predicates::{in_diametral_disk, in_lune, orientation, Orientation};
use gmp_geom::region::{convex_hull, Region};
use gmp_geom::{Point, Segment};
use proptest::prelude::*;

fn pt() -> impl Strategy<Value = Point> {
    (-500.0..500.0f64, -500.0..500.0f64).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fermat_point_is_no_worse_than_weiszfeld(a in pt(), b in pt(), c in pt()) {
        let exact = fermat_point(a, b, c);
        let t = exact.location;
        let exact_total = t.dist(a) + t.dist(b) + t.dist(c);
        let w = weiszfeld(a, b, c, 300);
        let w_total = w.dist(a) + w.dist(b) + w.dist(c);
        // The closed form is optimal; allow tiny numerical slack.
        prop_assert!(exact_total <= w_total + 1e-6,
            "closed form {exact_total} vs weiszfeld {w_total}");
    }

    #[test]
    fn fermat_point_dominates_midpoint_junctions(a in pt(), b in pt(), c in pt()) {
        let t = fermat_point(a, b, c).location;
        let total = t.dist(a) + t.dist(b) + t.dist(c);
        for j in [a.midpoint(b), b.midpoint(c), a.midpoint(c), Point::centroid([a,b,c]).unwrap()] {
            let via = j.dist(a) + j.dist(b) + j.dist(c);
            prop_assert!(total <= via + 1e-6);
        }
    }

    #[test]
    fn orientation_is_antisymmetric_under_swap(a in pt(), b in pt(), c in pt()) {
        let o1 = orientation(a, b, c);
        let o2 = orientation(a, c, b);
        match o1 {
            Orientation::Collinear => prop_assert_eq!(o2, Orientation::Collinear),
            Orientation::Clockwise => prop_assert_eq!(o2, Orientation::CounterClockwise),
            Orientation::CounterClockwise => prop_assert_eq!(o2, Orientation::Clockwise),
        }
    }

    #[test]
    fn segment_intersection_is_symmetric(a in pt(), b in pt(), c in pt(), d in pt()) {
        let s1 = Segment::new(a, b);
        let s2 = Segment::new(c, d);
        prop_assert_eq!(s1.intersects(&s2), s2.intersects(&s1));
        prop_assert_eq!(s1.properly_crosses(&s2), s2.properly_crosses(&s1));
        // Proper crossing implies intersection.
        if s1.properly_crosses(&s2) {
            prop_assert!(s1.intersects(&s2));
        }
    }

    #[test]
    fn proper_crossing_point_lies_on_both_lines(a in pt(), b in pt(), c in pt(), d in pt()) {
        let s1 = Segment::new(a, b);
        let s2 = Segment::new(c, d);
        if s1.properly_crosses(&s2) {
            let p = s1.line_intersection(&s2).expect("crossing lines intersect");
            // The crossing point is on both segments (generously bounded).
            prop_assert!(s1.contains(p) || p.dist(a).min(p.dist(b)) < 1e-3);
            prop_assert!(s2.contains(p) || p.dist(c).min(p.dist(d)) < 1e-3);
        }
    }

    #[test]
    fn diametral_disk_is_inside_the_lune(a in pt(), b in pt(), p in pt()) {
        prop_assume!(!a.almost_eq(b));
        if in_diametral_disk(p, a, b) {
            prop_assert!(in_lune(p, a, b), "Gabriel region must be inside the RNG region");
        }
    }

    #[test]
    fn hull_contains_all_points(points in proptest::collection::vec(pt(), 3..40)) {
        let hull = convex_hull(&points);
        prop_assume!(hull.len() >= 3);
        let region = Region::convex_polygon(hull.clone());
        for p in &points {
            prop_assert!(region.contains(*p), "{p} escaped its own hull");
        }
        // Hull vertices are drawn from the input.
        for h in &hull {
            prop_assert!(points.iter().any(|p| p.almost_eq(*h)));
        }
    }

    #[test]
    fn region_anchor_is_inside_its_bounding_box(c in pt(), r in 1.0..200.0f64) {
        let region = Region::Circle { center: c, radius: r };
        let bb = region.bounding_box();
        prop_assert!(bb.contains(region.anchor()));
        // The anchor is in the region itself for circles and rects.
        prop_assert!(region.contains(region.anchor()));
    }

    #[test]
    fn rotation_preserves_fermat_totals(a in pt(), b in pt(), c in pt(), ang in 0.0..std::f64::consts::TAU) {
        let t1 = fermat_point(a, b, c);
        let total1 = t1.total_length(a, b, c);
        let center = Point::new(10.0, -20.0);
        let (ra, rb, rc) = (
            a.rotate_around(center, ang),
            b.rotate_around(center, ang),
            c.rotate_around(center, ang),
        );
        let t2 = fermat_point(ra, rb, rc);
        let total2 = t2.total_length(ra, rb, rc);
        prop_assert!((total1 - total2).abs() < 1e-5,
            "rotation changed the optimum: {total1} vs {total2}");
    }
}
