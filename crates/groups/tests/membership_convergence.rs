//! Order-independence of membership replication: any interleaving of
//! seq-ordered [`MembershipUpdate`]s — including stale and duplicated
//! deliveries — converges to the same membership set.
//!
//! This is the invariant the concurrent session engine's live churn
//! stream leans on: sessions snapshot group membership at arbitrary
//! points of a delivery schedule the engine does not control, and the
//! snapshot may only depend on *which* updates have been delivered, never
//! on the order or multiplicity of their delivery.

use gmp_groups::{MembershipAction, MembershipSet};
use gmp_net::NodeId;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One member's update stream: strictly increasing seq numbers from 1,
/// alternating or repeating actions freely.
fn member_stream(node: u32, actions: &[bool]) -> Vec<(NodeId, MembershipAction, u64)> {
    actions
        .iter()
        .enumerate()
        .map(|(i, &join)| {
            let action = if join {
                MembershipAction::Join
            } else {
                MembershipAction::Leave
            };
            (NodeId(node), action, i as u64 + 1)
        })
        .collect()
}

/// Ground truth: a member is present iff its highest-seq update is a Join.
fn ground_truth(streams: &[Vec<(NodeId, MembershipAction, u64)>]) -> Vec<NodeId> {
    let mut members: Vec<NodeId> = streams
        .iter()
        .filter_map(|s| s.last())
        .filter(|(_, action, _)| matches!(action, MembershipAction::Join))
        .map(|&(node, _, _)| node)
        .collect();
    members.sort();
    members
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_interleaving_converges_to_the_same_set(
        // Per-member action streams: up to 12 members, up to 6 updates
        // each (true = Join, false = Leave).
        actions in proptest::collection::vec(
            proptest::collection::vec(prop_bool::ANY, 0..6),
            1..12,
        ),
        shuffle_seed in 0u64..u64::MAX,
        // How many extra stale/duplicate copies to inject.
        dup_count in 0usize..10,
    ) {
        let streams: Vec<_> = actions
            .iter()
            .enumerate()
            .map(|(i, a)| member_stream(i as u32, a))
            .collect();
        let expect = ground_truth(&streams);

        // Reference delivery: in-order, exactly once.
        let mut reference = MembershipSet::new();
        for stream in &streams {
            for &(node, action, seq) in stream {
                prop_assert!(reference.apply(node, action, seq));
            }
        }
        prop_assert_eq!(reference.members(), expect.clone());

        // Adversarial delivery: all updates shuffled into one arbitrary
        // interleaving, with duplicated copies injected mid-stream (those
        // arrive after the original or after a later update — i.e. stale)
        // and the whole schedule replayed twice.
        let mut rng = StdRng::seed_from_u64(shuffle_seed);
        let mut schedule: Vec<(NodeId, MembershipAction, u64)> =
            streams.iter().flatten().copied().collect();
        schedule.shuffle(&mut rng);
        let flat: Vec<(NodeId, MembershipAction, u64)> = schedule.clone();
        if !flat.is_empty() {
            for _ in 0..dup_count {
                let copy = flat[rng.gen_range(0..flat.len())];
                let at = rng.gen_range(0..=schedule.len());
                schedule.insert(at, copy);
            }
        }

        let mut adversarial = MembershipSet::new();
        for pass in 0..2 {
            for &(node, action, seq) in &schedule {
                let _ = adversarial.apply(node, action, seq);
            }
            prop_assert_eq!(
                adversarial.members(),
                expect.clone(),
                "pass {} diverged from in-order delivery",
                pass
            );
        }
        prop_assert_eq!(adversarial.len(), expect.len());
        for &m in &expect {
            prop_assert!(adversarial.contains(m));
        }
    }
}

/// A duplicated *first* delivery is accepted at most once even though the
/// interleaving may place the copies back to back (the `last_seq != 0`
/// reservation).
#[test]
fn duplicate_first_update_is_rejected() {
    let mut set = MembershipSet::new();
    assert!(set.apply(NodeId(3), MembershipAction::Join, 1));
    assert!(!set.apply(NodeId(3), MembershipAction::Join, 1));
    assert!(!set.apply(NodeId(3), MembershipAction::Leave, 1));
    assert_eq!(set.members(), vec![NodeId(3)]);
    assert!(!set.is_empty());
}

/// Stale deliveries arriving after a newer update are no-ops.
#[test]
fn stale_delivery_after_newer_update_is_a_noop() {
    let mut set = MembershipSet::new();
    assert!(set.apply(NodeId(7), MembershipAction::Join, 2));
    assert!(!set.apply(NodeId(7), MembershipAction::Leave, 1));
    assert!(set.contains(NodeId(7)));
    assert!(set.apply(NodeId(7), MembershipAction::Leave, 3));
    assert!(!set.contains(NodeId(7)));
    assert_eq!(set.len(), 0);
}
