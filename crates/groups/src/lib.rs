//! Source-maintained multicast group membership (extension substrate).
//!
//! The paper's network model (Section 2) assumes "the source node
//! (generally a prime node) knows the destinations prior to the
//! dissemination of the data packet" and explicitly defers group
//! establishment to source-maintained schemes \[25, 5\] or a separate group
//! management service \[20\]. This crate implements the source-maintained
//! variant so dynamic-membership workloads can be simulated end to end:
//!
//! * members send JOIN/LEAVE control messages that travel to the prime
//!   node by GPSR unicast over the real topology (control hops and energy
//!   are accounted with the same model as data packets);
//! * the prime node keeps one membership table per group, with
//!   per-member sequence numbers so stale or reordered updates are
//!   rejected;
//! * a seeded churn generator ([`MembershipTrace`]) produces reproducible
//!   join/leave workloads, and [`GroupManager::task_for`] snapshots the
//!   current membership into a [`MulticastTask`](gmp_sim::MulticastTask) ready for any router in
//!   the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod manager;
pub mod trace;

pub use manager::{
    ControlCost, GroupId, GroupManager, MembershipAction, MembershipSet, MembershipUpdate,
};
pub use trace::MembershipTrace;
