//! Seeded churn generation for dynamic-membership workloads.

use gmp_net::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::manager::{GroupId, MembershipAction, MembershipUpdate};

/// A reproducible sequence of membership updates for one group.
#[derive(Debug, Clone, PartialEq)]
pub struct MembershipTrace {
    /// The group the trace drives.
    pub group: GroupId,
    /// Updates in application order (sequence numbers already assigned,
    /// strictly increasing per member).
    pub updates: Vec<MembershipUpdate>,
}

impl MembershipTrace {
    /// Generates a churn trace: `initial` random members join, then
    /// `churn_events` random join/leave flips on nodes drawn from the
    /// topology (never the prime node).
    ///
    /// # Panics
    ///
    /// Panics if the topology has fewer than `initial + 1` nodes.
    pub fn random(
        topo: &Topology,
        group: GroupId,
        prime: NodeId,
        initial: usize,
        churn_events: usize,
        seed: u64,
    ) -> Self {
        assert!(topo.len() > initial, "need more nodes than initial members");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut candidates: Vec<NodeId> = (0..topo.len() as u32)
            .map(NodeId)
            .filter(|&n| n != prime)
            .collect();
        candidates.shuffle(&mut rng);
        let mut present: Vec<bool> = vec![false; topo.len()];
        let mut seqs: Vec<u64> = vec![0; topo.len()];
        let mut updates = Vec::with_capacity(initial + churn_events);
        for &m in candidates.iter().take(initial) {
            seqs[m.index()] += 1;
            present[m.index()] = true;
            updates.push(MembershipUpdate {
                group,
                node: m,
                action: MembershipAction::Join,
                seq: seqs[m.index()],
            });
        }
        for _ in 0..churn_events {
            let node = candidates[rng.gen_range(0..candidates.len())];
            seqs[node.index()] += 1;
            let action = if present[node.index()] {
                present[node.index()] = false;
                MembershipAction::Leave
            } else {
                present[node.index()] = true;
                MembershipAction::Join
            };
            updates.push(MembershipUpdate {
                group,
                node,
                action,
                seq: seqs[node.index()],
            });
        }
        MembershipTrace { group, updates }
    }

    /// The member set after applying the whole trace (ground truth for
    /// testing the manager).
    pub fn final_members(&self) -> Vec<NodeId> {
        let mut state: std::collections::BTreeMap<NodeId, bool> = Default::default();
        for u in &self.updates {
            state.insert(u.node, matches!(u.action, MembershipAction::Join));
        }
        state
            .into_iter()
            .filter(|(_, present)| *present)
            .map(|(n, _)| n)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::GroupManager;

    use gmp_sim::SimConfig;

    fn setup() -> (Topology, SimConfig) {
        let config = SimConfig::paper()
            .with_node_count(250)
            .with_area_side(700.0);
        let topo = Topology::random(&config.topology_config(), 8);
        (topo, config)
    }

    #[test]
    fn traces_are_seed_deterministic() {
        let (topo, _) = setup();
        let a = MembershipTrace::random(&topo, GroupId(1), NodeId(0), 10, 30, 7);
        let b = MembershipTrace::random(&topo, GroupId(1), NodeId(0), 10, 30, 7);
        let c = MembershipTrace::random(&topo, GroupId(1), NodeId(0), 10, 30, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sequence_numbers_strictly_increase_per_member() {
        let (topo, _) = setup();
        let trace = MembershipTrace::random(&topo, GroupId(1), NodeId(0), 15, 60, 3);
        let mut last: std::collections::HashMap<NodeId, u64> = Default::default();
        for u in &trace.updates {
            let prev = last.insert(u.node, u.seq).unwrap_or(0);
            assert!(u.seq > prev, "seq must increase for {}", u.node);
        }
    }

    #[test]
    fn manager_replay_matches_trace_ground_truth() {
        let (topo, config) = setup();
        assert!(topo.is_connected(), "pick a connected seed for this test");
        let prime = NodeId(0);
        let trace = MembershipTrace::random(&topo, GroupId(3), prime, 12, 50, 11);
        let mut mgr = GroupManager::new(&topo, &config, prime);
        for &u in &trace.updates {
            assert!(
                mgr.apply(u),
                "every fresh update on a connected graph lands"
            );
        }
        assert_eq!(mgr.members(GroupId(3)), trace.final_members());
        assert!(mgr.control_cost().transmissions > 0);
        assert_eq!(mgr.control_cost().undeliverable, 0);
    }

    #[test]
    fn trace_never_includes_the_prime() {
        let (topo, _) = setup();
        let trace = MembershipTrace::random(&topo, GroupId(1), NodeId(5), 20, 40, 2);
        assert!(trace.updates.iter().all(|u| u.node != NodeId(5)));
    }
}
