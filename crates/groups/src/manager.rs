//! The prime node's membership tables and control-plane accounting.

use std::collections::BTreeMap;

use gmp_net::face::{gpsr_route, RouteOutcome};
use gmp_net::{NodeId, PlanarKind, Topology};
use gmp_sim::{EnergyModel, MulticastTask, SimConfig};

/// Identifier of a multicast group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(pub u32);

impl std::fmt::Display for GroupId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Whether a member is joining or leaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipAction {
    /// The node wants multicast packets for the group.
    Join,
    /// The node no longer wants them.
    Leave,
}

/// One membership control message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MembershipUpdate {
    /// The group concerned.
    pub group: GroupId,
    /// The member (and control-message source).
    pub node: NodeId,
    /// Join or leave.
    pub action: MembershipAction,
    /// Per-member sequence number; the manager rejects non-increasing
    /// sequence numbers, so duplicated or reordered control messages are
    /// harmless.
    pub seq: u64,
}

/// Cost of delivering control messages to the prime node.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ControlCost {
    /// Control transmissions (GPSR unicast hops).
    pub transmissions: usize,
    /// Control-plane energy in joules (same model as data packets).
    pub energy_j: f64,
    /// Updates whose control message could not reach the prime node.
    pub undeliverable: usize,
}

#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct MemberRecord {
    present: bool,
    last_seq: u64,
}

/// One group's membership, replicated purely from seq-ordered
/// [`MembershipUpdate`]s.
///
/// This is the convergence anchor the live churn stream leans on: each
/// member's updates carry strictly increasing sequence numbers, an update
/// is accepted only when its `seq` exceeds the member's last accepted one,
/// and so the final state of every member is the action of its
/// highest-numbered update — *regardless of delivery order*, and with
/// stale or duplicated deliveries rejected as no-ops. Any interleaving of
/// the same updates converges to the same set (pinned by the
/// `membership_convergence` proptest).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct MembershipSet {
    records: BTreeMap<NodeId, MemberRecord>,
}

impl MembershipSet {
    /// An empty membership set.
    pub fn new() -> Self {
        MembershipSet::default()
    }

    /// Applies one update; returns `true` if it was fresh (accepted),
    /// `false` for a stale or duplicate delivery (state unchanged).
    ///
    /// `seq = 0` is reserved as "never seen": member streams must number
    /// their updates from 1.
    pub fn apply(&mut self, node: NodeId, action: MembershipAction, seq: u64) -> bool {
        let record = self.records.entry(node).or_default();
        if seq <= record.last_seq && record.last_seq != 0 {
            return false; // stale or duplicate
        }
        record.last_seq = seq;
        record.present = matches!(action, MembershipAction::Join);
        true
    }

    /// `true` if `node` is currently a member.
    pub fn contains(&self, node: NodeId) -> bool {
        self.records.get(&node).is_some_and(|r| r.present)
    }

    /// Number of current members.
    pub fn len(&self) -> usize {
        self.records.values().filter(|r| r.present).count()
    }

    /// `true` when no node is currently a member.
    pub fn is_empty(&self) -> bool {
        !self.records.values().any(|r| r.present)
    }

    /// Appends the current members to `out` in ascending id order
    /// (allocation-free when `out` has capacity).
    pub fn members_into(&self, out: &mut Vec<NodeId>) {
        out.extend(
            self.records
                .iter()
                .filter(|(_, r)| r.present)
                .map(|(&n, _)| n),
        );
    }

    /// The current members, sorted ascending.
    pub fn members(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.members_into(&mut out);
        out
    }
}

/// The membership service hosted at the prime node.
#[derive(Debug)]
pub struct GroupManager<'a> {
    topo: &'a Topology,
    config: &'a SimConfig,
    prime: NodeId,
    groups: BTreeMap<GroupId, MembershipSet>,
    cost: ControlCost,
}

impl<'a> GroupManager<'a> {
    /// Creates a manager hosted at `prime`.
    pub fn new(topo: &'a Topology, config: &'a SimConfig, prime: NodeId) -> Self {
        GroupManager {
            topo,
            config,
            prime,
            groups: BTreeMap::new(),
            cost: ControlCost::default(),
        }
    }

    /// The prime node hosting the tables.
    pub fn prime(&self) -> NodeId {
        self.prime
    }

    /// Accumulated control-plane cost.
    pub fn control_cost(&self) -> ControlCost {
        self.cost
    }

    /// Processes one membership update, routing its control message from
    /// the member to the prime node over the real topology.
    ///
    /// Returns `true` if the update was accepted (delivered and fresh).
    pub fn apply(&mut self, update: MembershipUpdate) -> bool {
        // Route the control message (updates originating at the prime node
        // itself are free).
        if update.node != self.prime {
            let outcome = gpsr_route(
                self.topo,
                PlanarKind::Gabriel,
                update.node,
                self.prime,
                self.config.max_path_hops as usize,
            );
            match outcome {
                RouteOutcome::Delivered(path) => {
                    let energy = EnergyModel::from_config(self.config);
                    for pair in path.windows(2) {
                        let listeners = self.topo.neighbors(pair[0]).len();
                        let link_m = self.topo.pos(pair[0]).dist(self.topo.pos(pair[1]));
                        self.cost.transmissions += 1;
                        self.cost.energy_j += energy.transmission_energy(
                            self.config.message_bytes,
                            listeners,
                            link_m,
                        );
                    }
                }
                _ => {
                    self.cost.undeliverable += 1;
                    return false;
                }
            }
        }
        self.groups
            .entry(update.group)
            .or_default()
            .apply(update.node, update.action, update.seq)
    }

    /// Current members of `group`, sorted (empty for unknown groups).
    pub fn members(&self, group: GroupId) -> Vec<NodeId> {
        self.groups
            .get(&group)
            .map(MembershipSet::members)
            .unwrap_or_default()
    }

    /// Snapshots the membership of `group` into a multicast task rooted at
    /// the prime node, or `None` when the group has no members besides
    /// the prime itself.
    pub fn task_for(&self, group: GroupId) -> Option<MulticastTask> {
        let dests: Vec<NodeId> = self
            .members(group)
            .into_iter()
            .filter(|&m| m != self.prime)
            .collect();
        if dests.is_empty() {
            None
        } else {
            Some(MulticastTask::new(self.prime, dests))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Topology, SimConfig) {
        let config = SimConfig::paper()
            .with_node_count(300)
            .with_area_side(700.0);
        let topo = Topology::random(&config.topology_config(), 31);
        (topo, config)
    }

    #[test]
    fn joins_and_leaves_update_membership() {
        let (topo, config) = setup();
        let mut mgr = GroupManager::new(&topo, &config, NodeId(0));
        let g = GroupId(1);
        assert!(mgr.apply(MembershipUpdate {
            group: g,
            node: NodeId(5),
            action: MembershipAction::Join,
            seq: 1
        }));
        assert!(mgr.apply(MembershipUpdate {
            group: g,
            node: NodeId(9),
            action: MembershipAction::Join,
            seq: 1
        }));
        assert_eq!(mgr.members(g), vec![NodeId(5), NodeId(9)]);
        assert!(mgr.apply(MembershipUpdate {
            group: g,
            node: NodeId(5),
            action: MembershipAction::Leave,
            seq: 2
        }));
        assert_eq!(mgr.members(g), vec![NodeId(9)]);
    }

    #[test]
    fn stale_and_duplicate_updates_are_rejected() {
        let (topo, config) = setup();
        let mut mgr = GroupManager::new(&topo, &config, NodeId(0));
        let g = GroupId(1);
        let join = MembershipUpdate {
            group: g,
            node: NodeId(7),
            action: MembershipAction::Join,
            seq: 5,
        };
        assert!(mgr.apply(join));
        // Duplicate (same seq) rejected.
        assert!(!mgr.apply(join));
        // Stale leave (lower seq) rejected: node stays a member.
        assert!(!mgr.apply(MembershipUpdate {
            group: g,
            node: NodeId(7),
            action: MembershipAction::Leave,
            seq: 3
        }));
        assert_eq!(mgr.members(g), vec![NodeId(7)]);
    }

    #[test]
    fn control_messages_cost_real_hops_and_energy() {
        let (topo, config) = setup();
        let mut mgr = GroupManager::new(&topo, &config, NodeId(0));
        mgr.apply(MembershipUpdate {
            group: GroupId(1),
            node: NodeId(200),
            action: MembershipAction::Join,
            seq: 1,
        });
        let cost = mgr.control_cost();
        assert!(cost.transmissions >= 1);
        assert!(cost.energy_j > 0.0);
        assert_eq!(cost.undeliverable, 0);
    }

    #[test]
    fn prime_node_updates_are_free() {
        let (topo, config) = setup();
        let mut mgr = GroupManager::new(&topo, &config, NodeId(0));
        mgr.apply(MembershipUpdate {
            group: GroupId(1),
            node: NodeId(0),
            action: MembershipAction::Join,
            seq: 1,
        });
        assert_eq!(mgr.control_cost().transmissions, 0);
    }

    #[test]
    fn unreachable_member_is_counted_undeliverable() {
        let config = SimConfig::paper().with_node_count(3);
        let positions = vec![
            gmp_geom::Point::new(0.0, 0.0),
            gmp_geom::Point::new(100.0, 0.0),
            gmp_geom::Point::new(5000.0, 5000.0), // island
        ];
        let topo = Topology::from_positions(positions, gmp_geom::Aabb::square(6000.0), 150.0);
        let mut mgr = GroupManager::new(&topo, &config, NodeId(0));
        assert!(!mgr.apply(MembershipUpdate {
            group: GroupId(1),
            node: NodeId(2),
            action: MembershipAction::Join,
            seq: 1
        }));
        assert_eq!(mgr.control_cost().undeliverable, 1);
        assert!(mgr.members(GroupId(1)).is_empty());
    }

    #[test]
    fn task_snapshot_excludes_the_prime_and_empty_groups() {
        let (topo, config) = setup();
        let mut mgr = GroupManager::new(&topo, &config, NodeId(0));
        let g = GroupId(2);
        assert_eq!(mgr.task_for(g), None);
        mgr.apply(MembershipUpdate {
            group: g,
            node: NodeId(0),
            action: MembershipAction::Join,
            seq: 1,
        });
        assert_eq!(mgr.task_for(g), None, "prime-only group has no task");
        mgr.apply(MembershipUpdate {
            group: g,
            node: NodeId(42),
            action: MembershipAction::Join,
            seq: 1,
        });
        let task = mgr.task_for(g).expect("one member");
        assert_eq!(task.source, NodeId(0));
        assert_eq!(task.dests, vec![NodeId(42)]);
    }

    #[test]
    fn groups_are_independent() {
        let (topo, config) = setup();
        let mut mgr = GroupManager::new(&topo, &config, NodeId(0));
        mgr.apply(MembershipUpdate {
            group: GroupId(1),
            node: NodeId(5),
            action: MembershipAction::Join,
            seq: 1,
        });
        mgr.apply(MembershipUpdate {
            group: GroupId(2),
            node: NodeId(6),
            action: MembershipAction::Join,
            seq: 1,
        });
        assert_eq!(mgr.members(GroupId(1)), vec![NodeId(5)]);
        assert_eq!(mgr.members(GroupId(2)), vec![NodeId(6)]);
    }
}
