//! An executable rendition of the paper's Figure 8 walkthrough: the
//! packet funnels through a single pivot chain while the destinations are
//! far away, and only splits into parallel copies near the junction.

use gmp::gmp::GmpRouter;
use gmp::net::{NodeId, Topology};
use gmp::sim::{MulticastTask, SimConfig, TaskRunner};

/// Figure 8's cast, embedded with real coordinates: a relay chain
/// `s → n1 → c → n2 → n3` and destinations `c`, and `{u, v, d}` beyond a
/// junction near `n3`.
fn figure8_topology() -> (Topology, NodeId, Vec<NodeId>) {
    let positions = vec![
        gmp::geom::Point::new(0.0, 0.0),      // 0: s
        gmp::geom::Point::new(140.0, 10.0),   // 1: n1
        gmp::geom::Point::new(280.0, 20.0),   // 2: c (also a destination)
        gmp::geom::Point::new(420.0, 40.0),   // 3: n2
        gmp::geom::Point::new(560.0, 60.0),   // 4: n3
        gmp::geom::Point::new(700.0, 100.0),  // 5: n4
        gmp::geom::Point::new(660.0, -40.0),  // 6: n5
        gmp::geom::Point::new(830.0, 150.0),  // 7: u
        gmp::geom::Point::new(820.0, 30.0),   // 8: v
        gmp::geom::Point::new(760.0, -120.0), // 9: d
    ];
    let topo = Topology::from_positions(positions, gmp::geom::Aabb::square(1000.0), 150.0);
    (
        topo,
        NodeId(0),
        vec![NodeId(2), NodeId(7), NodeId(8), NodeId(9)],
    )
}

#[test]
fn packet_funnels_then_splits_near_the_junction() {
    let (topo, source, dests) = figure8_topology();
    let config = SimConfig::paper().with_node_count(topo.len());
    let task = MulticastTask::new(source, dests.clone());
    let report = TaskRunner::new(&topo, &config).run(&mut GmpRouter::new(), &task);
    assert!(
        report.delivered_all(),
        "figure-8 deliveries failed: {:?}",
        report.failed_dests
    );

    // Step 1 of the walkthrough: s emits a single copy (one pivot covers
    // all four destinations).
    let from_source: Vec<_> = report
        .links
        .iter()
        .filter(|&&(from, _)| from == source)
        .collect();
    assert_eq!(
        from_source.len(),
        1,
        "the source must not split (got {from_source:?})"
    );

    // The split into parallel copies happens only past c (x > 280):
    // before the junction every node forwards exactly one copy.
    use std::collections::HashMap;
    let mut out_degree: HashMap<NodeId, usize> = HashMap::new();
    for &(from, _) in &report.links {
        *out_degree.entry(from).or_default() += 1;
    }
    for (&node, &deg) in &out_degree {
        if topo.pos(node).x < 280.0 {
            assert_eq!(
                deg,
                1,
                "node {node} at x={:.0} split too early",
                topo.pos(node).x
            );
        }
    }
    // Someone past the junction splits into at least two copies.
    assert!(
        out_degree
            .iter()
            .any(|(&n, &d)| d >= 2 && topo.pos(n).x >= 280.0),
        "expected a split near the junction: {out_degree:?}"
    );

    // c is both a destination and the relay for the others: it must be
    // delivered strictly earlier (fewer hops) than u, v, d.
    let c_hops = report.delivery_hops[&NodeId(2)];
    for far in [NodeId(7), NodeId(8), NodeId(9)] {
        assert!(
            report.delivery_hops[&far] > c_hops,
            "{far} delivered no later than the en-route destination c"
        );
    }

    // Efficiency: the realized tree must share the long trunk — well
    // under four independent unicast paths (~5 hops each).
    assert!(
        report.transmissions <= 12,
        "{} transmissions is no better than unicasting",
        report.transmissions
    );
}

#[test]
fn gmpnr_matches_on_the_same_cast() {
    // Radio-range awareness should not change *whether* Figure 8's cast is
    // deliverable, only the hop budget.
    let (topo, source, dests) = figure8_topology();
    let config = SimConfig::paper().with_node_count(topo.len());
    let task = MulticastTask::new(source, dests);
    let mut nr = GmpRouter::without_radio_range_awareness();
    let nr_report = TaskRunner::new(&topo, &config).run(&mut nr, &task);
    assert!(nr_report.delivered_all());
    let report = TaskRunner::new(&topo, &config).run(&mut GmpRouter::new(), &task);
    assert!(report.transmissions <= nr_report.transmissions);
}
