//! Cross-crate integration: every protocol, one simulator, shared
//! topologies and tasks.

use gmp::baselines::{GrdRouter, LgkRouter, LgsRouter, PbmRouter, SmtRouter};
use gmp::gmp::GmpRouter;
use gmp::net::{NodeId, Topology};
use gmp::sim::{MulticastTask, Protocol, SimConfig, TaskRunner};

fn all_protocols() -> Vec<Box<dyn Protocol>> {
    vec![
        Box::new(GmpRouter::new()),
        Box::new(GmpRouter::without_radio_range_awareness()),
        Box::new(PbmRouter::with_lambda(0.0)),
        Box::new(PbmRouter::with_lambda(0.3)),
        Box::new(PbmRouter::with_lambda(0.6)),
        Box::new(LgsRouter::new()),
        Box::new(LgkRouter::new(2)),
        Box::new(LgkRouter::new(4)),
        Box::new(SmtRouter::new()),
        Box::new(GrdRouter::new()),
    ]
}

#[test]
fn every_protocol_delivers_on_paper_density_networks() {
    let config = SimConfig::paper().with_node_count(600);
    let topo = Topology::random(&config.topology_config(), 1);
    assert!(topo.is_connected());
    let runner = TaskRunner::new(&topo, &config);
    for seed in 0..4u64 {
        for k in [3usize, 10, 20] {
            let task = MulticastTask::random(&topo, k, seed * 100 + k as u64);
            for proto in all_protocols().iter_mut() {
                let report = runner.run(proto.as_mut(), &task);
                assert!(
                    report.delivered_all(),
                    "{} failed {:?} (seed {seed}, k {k})",
                    proto.name(),
                    report.failed_dests
                );
                assert!(!report.truncated, "{} truncated", proto.name());
                assert_eq!(report.links.len(), report.transmissions);
            }
        }
    }
}

#[test]
fn delivery_hop_counts_are_consistent_with_the_hop_cap() {
    let config = SimConfig::paper()
        .with_node_count(500)
        .with_max_path_hops(100);
    let topo = Topology::random(&config.topology_config(), 2);
    let runner = TaskRunner::new(&topo, &config);
    let task = MulticastTask::random(&topo, 15, 9);
    for proto in all_protocols().iter_mut() {
        let report = runner.run(proto.as_mut(), &task);
        for (&dest, &hops) in &report.delivery_hops {
            assert!(hops >= 1, "{}: {dest} delivered in 0 hops", proto.name());
            assert!(hops <= 100, "{}: {dest} exceeded hop cap", proto.name());
        }
    }
}

#[test]
fn reports_are_deterministic_across_runs() {
    let config = SimConfig::paper().with_node_count(400);
    let topo = Topology::random(&config.topology_config(), 3);
    let runner = TaskRunner::new(&topo, &config);
    let task = MulticastTask::random(&topo, 8, 5);
    for make in [
        || -> Box<dyn Protocol> { Box::new(GmpRouter::new()) },
        || -> Box<dyn Protocol> { Box::new(PbmRouter::with_lambda(0.3)) },
        || -> Box<dyn Protocol> { Box::new(LgsRouter::new()) },
        || -> Box<dyn Protocol> { Box::new(SmtRouter::new()) },
        || -> Box<dyn Protocol> { Box::new(GrdRouter::new()) },
    ] {
        let a = runner.run(make().as_mut(), &task);
        let b = runner.run(make().as_mut(), &task);
        assert_eq!(a, b);
    }
}

#[test]
fn energy_recomputes_from_the_transmission_log() {
    let config = SimConfig::paper().with_node_count(500);
    let topo = Topology::random(&config.topology_config(), 4);
    let runner = TaskRunner::new(&topo, &config);
    let task = MulticastTask::random(&topo, 10, 1);
    let report = runner.run(&mut GmpRouter::new(), &task);
    let airtime = config.message_airtime();
    let expected: f64 = report
        .links
        .iter()
        .map(|&(from, _)| {
            let listeners = topo.neighbors(from).len() as f64;
            (config.tx_power_w + listeners * config.rx_power_w) * airtime
        })
        .sum();
    assert!(
        (report.energy_j - expected).abs() < 1e-9,
        "energy {} != recomputed {expected}",
        report.energy_j
    );
}

#[test]
fn smt_transmissions_form_a_tree() {
    // Source routing never duplicates an edge and never revisits a node.
    let config = SimConfig::paper().with_node_count(500);
    let topo = Topology::random(&config.topology_config(), 5);
    let runner = TaskRunner::new(&topo, &config);
    let task = MulticastTask::random(&topo, 12, 2);
    let report = runner.run(&mut SmtRouter::new(), &task);
    assert!(report.delivered_all());
    let mut receivers: Vec<NodeId> = report.links.iter().map(|&(_, to)| to).collect();
    let n_links = receivers.len();
    receivers.sort();
    receivers.dedup();
    assert_eq!(receivers.len(), n_links, "SMT revisited a node");
    assert!(!receivers.contains(&task.source));
}

#[test]
fn grd_per_destination_hops_lower_bound_gmp() {
    // GRD explicitly minimizes per-destination hops, so across enough
    // tasks its mean must not exceed GMP's.
    let config = SimConfig::paper().with_node_count(700);
    let topo = Topology::random(&config.topology_config(), 6);
    let runner = TaskRunner::new(&topo, &config);
    let mut grd_sum = 0.0;
    let mut gmp_sum = 0.0;
    for seed in 0..15u64 {
        let task = MulticastTask::random(&topo, 12, seed);
        grd_sum += runner
            .run(&mut GrdRouter::new(), &task)
            .mean_dest_hops()
            .expect("delivered");
        gmp_sum += runner
            .run(&mut GmpRouter::new(), &task)
            .mean_dest_hops()
            .expect("delivered");
    }
    assert!(
        grd_sum <= gmp_sum + 1.0,
        "GRD {grd_sum} should lower-bound GMP {gmp_sum}"
    );
}

#[test]
fn failure_injection_degrades_delivery_gracefully() {
    let base = SimConfig::paper().with_node_count(600);
    let topo = Topology::random(&base.topology_config(), 7);
    let task = MulticastTask::random(&topo, 10, 3);
    let mut delivered_by_prob = Vec::new();
    for prob in [0.0, 0.3, 0.9] {
        let config = base.clone().with_node_failure_prob(prob);
        let runner = TaskRunner::new(&topo, &config);
        let report = runner.run_seeded(&mut GmpRouter::new(), &task, 11);
        delivered_by_prob.push(report.delivered_count());
        assert!(!report.truncated);
    }
    assert_eq!(delivered_by_prob[0], 10, "no failures at p=0");
    assert!(
        delivered_by_prob[2] <= delivered_by_prob[0],
        "delivery should not improve with more dead nodes"
    );
}
