//! Integration tests for the extension subsystems: geocast, group
//! management, mobility, and visualization — exercised together through
//! the facade crate the way a downstream user would.

use gmp::geom::{Aabb, Point, Region};
use gmp::gmp::{GmpGeocast, GmpRouter};
use gmp::groups::{GroupId, GroupManager, MembershipTrace};
use gmp::net::mobility::{broken_link_fraction, RandomWaypoint};
use gmp::net::{NodeId, Topology};
use gmp::sim::geocast::{GeocastRunner, GeocastTask};
use gmp::sim::{SimConfig, TaskRunner};
use gmp::viz::SvgScene;

#[test]
fn dynamic_group_session_end_to_end() {
    // Membership churn → snapshots → GMP multicast, all costs accounted.
    let config = SimConfig::paper().with_node_count(500);
    let topo = Topology::random(&config.topology_config(), 60);
    assert!(topo.is_connected());
    let prime = NodeId(3);
    let group = GroupId(7);
    let trace = MembershipTrace::random(&topo, group, prime, 10, 30, 17);
    let mut mgr = GroupManager::new(&topo, &config, prime);
    let runner = TaskRunner::new(&topo, &config);
    let mut total_data_tx = 0usize;
    for chunk in trace.updates.chunks(8) {
        for &u in chunk {
            assert!(mgr.apply(u));
        }
        if let Some(task) = mgr.task_for(group) {
            let report = runner.run(&mut GmpRouter::new(), &task);
            assert!(report.delivered_all(), "snapshot multicast must deliver");
            total_data_tx += report.transmissions;
        }
    }
    assert_eq!(mgr.members(group), trace.final_members());
    assert!(total_data_tx > 0);
    assert!(mgr.control_cost().transmissions > 0);
    assert_eq!(mgr.control_cost().undeliverable, 0);
}

#[test]
fn geocast_to_a_hull_of_observed_sensors() {
    // Build a polygon region from a convex hull of points of interest and
    // geocast into it — the Voronoi/hull style of [28].
    let config = SimConfig::paper().with_node_count(500);
    let topo = Topology::random(&config.topology_config(), 61);
    let hull = gmp::geom::convex_hull(&[
        Point::new(700.0, 700.0),
        Point::new(900.0, 720.0),
        Point::new(880.0, 930.0),
        Point::new(720.0, 900.0),
        Point::new(800.0, 800.0), // interior, dropped by the hull
    ]);
    assert_eq!(hull.len(), 4);
    let region = Region::convex_polygon(hull);
    let task = GeocastTask {
        source: NodeId(0),
        region,
    };
    let report = GeocastRunner::new(&topo, &config).run(&mut GmpGeocast::new(), &task);
    assert!(!report.members.is_empty());
    assert!(
        report.coverage() >= 0.9,
        "coverage {:.2}",
        report.coverage()
    );
    assert!(report.transmissions >= report.reached.len());
}

#[test]
fn mobility_snapshots_still_route() {
    // Snapshots of a moving network remain routable topologies.
    let mut model =
        RandomWaypoint::new(Aabb::square(1000.0), 400, 150.0, (1.0, 5.0), (0.0, 2.0), 62);
    let config = SimConfig::paper().with_node_count(400);
    let t0 = model.snapshot();
    model.advance(30.0);
    let t30 = model.snapshot();
    assert!(broken_link_fraction(&t0, &t30) > 0.0);
    for topo in [&t0, &t30] {
        if !topo.is_connected() {
            continue;
        }
        let task = gmp::sim::MulticastTask::random(topo, 8, 5);
        let report = TaskRunner::new(topo, &config).run(&mut GmpRouter::new(), &task);
        assert!(report.delivered_all());
    }
}

#[test]
fn svg_rendering_of_a_real_route() {
    let config = SimConfig::paper()
        .with_node_count(300)
        .with_area_side(600.0);
    let topo = Topology::random(&config.topology_config(), 63);
    let task = gmp::sim::MulticastTask::random(&topo, 6, 2);
    let report = TaskRunner::new(&topo, &config).run(&mut GmpRouter::new(), &task);
    let mut scene = SvgScene::new(topo.area());
    for node in topo.nodes() {
        scene.circle(node.pos, 1.5, "#cccccc");
    }
    for &(a, b) in &report.links {
        scene.line(topo.pos(a), topo.pos(b), "#3366cc", 1.0);
    }
    let svg = scene.finish();
    assert!(svg.starts_with("<svg"));
    // One line element per transmission plus the node circles.
    assert_eq!(svg.matches("<line").count(), report.links.len());
    assert_eq!(svg.matches("<circle").count(), topo.len());
}
