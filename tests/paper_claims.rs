//! Statistical shape tests for the paper's headline claims, on fixed
//! seeds so they are deterministic. Each test aggregates enough tasks for
//! the ordering to be stable, with slack for the claims that our
//! idealized substrate reproduces only approximately (see EXPERIMENTS.md).

use gmp::baselines::{GrdRouter, LgsRouter, PbmRouter};
use gmp::gmp::GmpRouter;
use gmp::net::Topology;
use gmp::sim::{MulticastTask, Protocol, SimConfig, TaskRunner};

struct Aggregate {
    total_hops: f64,
    dest_hops: f64,
    energy: f64,
    failures: usize,
}

fn aggregate(
    topo: &Topology,
    config: &SimConfig,
    make: &dyn Fn() -> Box<dyn Protocol>,
    k: usize,
    tasks: u64,
) -> Aggregate {
    let runner = TaskRunner::new(topo, config);
    let mut agg = Aggregate {
        total_hops: 0.0,
        dest_hops: 0.0,
        energy: 0.0,
        failures: 0,
    };
    for seed in 0..tasks {
        let task = MulticastTask::random(topo, k, seed * 7 + 1);
        let report = runner.run(make().as_mut(), &task);
        agg.total_hops += report.transmissions as f64;
        agg.dest_hops += report.mean_dest_hops().unwrap_or(0.0);
        agg.energy += report.energy_j;
        if !report.delivered_all() {
            agg.failures += 1;
        }
    }
    agg
}

fn paper_topology(seed: u64) -> (Topology, SimConfig) {
    let config = SimConfig::paper();
    (Topology::random(&config.topology_config(), seed), config)
}

#[test]
fn fig11_gmp_beats_pbm_on_total_hops() {
    // The headline claim: "GMP requires 25% less hops … than alternative
    // algorithms". Against PBM (best-λ is even costlier; we use λ = 0.3,
    // near the paper's sweet spot) GMP must win by a clear margin.
    let (topo, config) = paper_topology(100);
    let gmp = aggregate(&topo, &config, &|| Box::new(GmpRouter::new()), 15, 25);
    let pbm = aggregate(
        &topo,
        &config,
        &|| Box::new(PbmRouter::with_lambda(0.3)),
        15,
        25,
    );
    assert!(
        gmp.total_hops < 0.9 * pbm.total_hops,
        "GMP {} vs PBM {}: expected ≥10% fewer total hops",
        gmp.total_hops,
        pbm.total_hops
    );
}

#[test]
fn fig11_radio_awareness_saves_hops() {
    // "GMPnr uses more hops than GMP", growing with k.
    let (topo, config) = paper_topology(101);
    let gmp = aggregate(&topo, &config, &|| Box::new(GmpRouter::new()), 20, 25);
    let nr = aggregate(
        &topo,
        &config,
        &|| Box::new(GmpRouter::without_radio_range_awareness()),
        20,
        25,
    );
    assert!(
        gmp.total_hops < nr.total_hops,
        "GMP {} vs GMPnr {}",
        gmp.total_hops,
        nr.total_hops
    );
}

#[test]
fn fig12_gmp_close_to_the_greedy_lower_bound() {
    // "PBM, SMT and GMP provide comparable per destination hop counts
    // (close to the greedy solution, GRD)."
    let (topo, config) = paper_topology(102);
    let gmp = aggregate(&topo, &config, &|| Box::new(GmpRouter::new()), 15, 25);
    let grd = aggregate(&topo, &config, &|| Box::new(GrdRouter::new()), 15, 25);
    assert!(
        gmp.dest_hops < 1.4 * grd.dest_hops,
        "GMP per-dest hops {} should be within 40% of GRD's {}",
        gmp.dest_hops,
        grd.dest_hops
    );
}

#[test]
fn fig12_lgs_per_destination_hops_are_clearly_worse() {
    // "LGS does not match the others in this respect" — its sequential
    // chains inflate per-destination hops (Figure 13).
    let (topo, config) = paper_topology(103);
    let gmp = aggregate(&topo, &config, &|| Box::new(GmpRouter::new()), 15, 25);
    let lgs = aggregate(&topo, &config, &|| Box::new(LgsRouter::new()), 15, 25);
    assert!(
        lgs.dest_hops > 1.25 * gmp.dest_hops,
        "LGS {} should clearly exceed GMP {}",
        lgs.dest_hops,
        gmp.dest_hops
    );
}

#[test]
fn fig14_energy_ranking_follows_hop_ranking() {
    // Energy is transmissions × (tx + listeners·rx) × airtime, so the
    // Fig. 14 ordering mirrors Fig. 11: GMP below PBM and GMPnr.
    let (topo, config) = paper_topology(104);
    let gmp = aggregate(&topo, &config, &|| Box::new(GmpRouter::new()), 12, 25);
    let pbm = aggregate(
        &topo,
        &config,
        &|| Box::new(PbmRouter::with_lambda(0.3)),
        12,
        25,
    );
    let nr = aggregate(
        &topo,
        &config,
        &|| Box::new(GmpRouter::without_radio_range_awareness()),
        12,
        25,
    );
    assert!(gmp.energy < pbm.energy);
    assert!(gmp.energy < nr.energy);
}

#[test]
fn fig15_lgs_fails_most_in_sparse_networks() {
    // "LGS has the largest number of failures because it assumes a valid
    // next hop can always be found"; GMP and PBM recover via perimeter
    // mode. Run at a genuinely sparse density where voids occur.
    let config = SimConfig::paper()
        .with_node_count(150)
        .with_max_path_hops(100);
    let mut lgs_failures = 0usize;
    let mut gmp_failures = 0usize;
    let mut pbm_failures = 0usize;
    for net in 0..3u64 {
        let topo = Topology::random(&config.topology_config(), 200 + net);
        let lgs = aggregate(&topo, &config, &|| Box::new(LgsRouter::new()), 12, 20);
        let gmp = aggregate(&topo, &config, &|| Box::new(GmpRouter::new()), 12, 20);
        let pbm = aggregate(
            &topo,
            &config,
            &|| Box::new(PbmRouter::with_lambda(0.3)),
            12,
            20,
        );
        lgs_failures += lgs.failures;
        gmp_failures += gmp.failures;
        pbm_failures += pbm.failures;
    }
    assert!(
        lgs_failures > gmp_failures,
        "LGS failures {lgs_failures} must exceed GMP's {gmp_failures}"
    );
    assert!(
        lgs_failures > pbm_failures,
        "LGS failures {lgs_failures} must exceed PBM's {pbm_failures}"
    );
    // GMP's recovery keeps it in PBM's league (the paper has it strictly
    // best; we allow a small slack — see EXPERIMENTS.md).
    assert!(
        gmp_failures <= pbm_failures + 3,
        "GMP failures {gmp_failures} should be comparable to PBM's {pbm_failures}"
    );
}

#[test]
fn multicast_beats_multiple_unicast() {
    // The premise of the whole field: multicasting preserves network
    // resources versus per-destination unicast, and the gap widens with k.
    let (topo, config) = paper_topology(105);
    let gmp25 = aggregate(&topo, &config, &|| Box::new(GmpRouter::new()), 25, 15);
    let grd25 = aggregate(&topo, &config, &|| Box::new(GrdRouter::new()), 25, 15);
    assert!(
        gmp25.total_hops < 0.5 * grd25.total_hops,
        "at k=25 GMP ({}) should use fewer than half of GRD's hops ({})",
        gmp25.total_hops,
        grd25.total_hops
    );
}
