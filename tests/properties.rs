//! Cross-crate property-based tests: invariants that must hold for every
//! random topology and task.

use gmp::gmp::grouping::group_destinations;
use gmp::gmp::GmpRouter;
use gmp::net::{NodeId, Topology, TopologyConfig};
use gmp::sim::{MulticastTask, SimConfig, TaskRunner};
use proptest::prelude::*;

fn arb_topology() -> impl Strategy<Value = (Topology, SimConfig)> {
    (150usize..400, 0u64..1000).prop_map(|(nodes, seed)| {
        let config = SimConfig::paper().with_node_count(nodes);
        let topo = Topology::random(&config.topology_config(), seed);
        (topo, config)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn grouping_partitions_destinations_exactly(
        (topo, _config) in arb_topology(),
        node_pick in 0usize..100,
        seed in 0u64..500,
        k in 2usize..10,
        aware in proptest::bool::ANY,
    ) {
        let node = NodeId((node_pick % topo.len()) as u32);
        let task = MulticastTask::random(&topo, k, seed);
        let dests: Vec<NodeId> = task
            .dests
            .iter()
            .copied()
            .filter(|&d| d != node)
            .collect();
        prop_assume!(!dests.is_empty());
        let g = group_destinations(&topo, node, &dests, aware, None);
        // Covered groups + voids partition the input set exactly.
        let mut all: Vec<NodeId> = g
            .covered
            .iter()
            .flat_map(|c| c.dests.iter().copied())
            .chain(g.voids.iter().copied())
            .collect();
        all.sort();
        let mut want = dests.clone();
        want.sort();
        prop_assert_eq!(all, want);
        // Every next hop is a real neighbor and strictly improves the
        // group's total distance (the loop-prevention constraint).
        let here = topo.pos(node);
        for c in &g.covered {
            prop_assert!(topo.neighbors(node).contains(&c.next_hop));
            let own: f64 = c.dests.iter().map(|&v| here.dist(topo.pos(v))).sum();
            let via: f64 = c
                .dests
                .iter()
                .map(|&v| topo.pos(c.next_hop).dist(topo.pos(v)))
                .sum();
            prop_assert!(via < own, "next hop must strictly improve");
        }
    }

    #[test]
    fn gmp_delivers_everything_reachable(
        (topo, config) in arb_topology(),
        seed in 0u64..500,
        k in 2usize..12,
    ) {
        let task = MulticastTask::random(&topo, k, seed);
        let runner = TaskRunner::new(&topo, &config);
        let report = runner.run(&mut GmpRouter::new(), &task);
        prop_assert!(!report.truncated, "event cap should never fire for GMP");
        // On a connected graph at these densities, GMP with the standard
        // hop cap delivers everything reachable; verify failures are only
        // ever unreachable destinations or genuinely void-locked ones at
        // very low degree.
        if topo.is_connected() && topo.average_degree() > 15.0 {
            prop_assert!(
                report.delivered_all(),
                "failed {:?} on a connected graph of degree {:.1}",
                report.failed_dests,
                topo.average_degree()
            );
        }
        // Hop accounting sanity.
        for &h in report.delivery_hops.values() {
            prop_assert!(h as usize <= report.transmissions);
        }
        prop_assert_eq!(report.links.len(), report.transmissions);
    }

    #[test]
    fn topology_neighbor_symmetry_holds(
        nodes in 50usize..300,
        seed in 0u64..1000,
        rr in 60.0f64..200.0,
    ) {
        let config = TopologyConfig::new(800.0, nodes, rr);
        let topo = Topology::random(&config, seed);
        for n in topo.nodes() {
            for &m in topo.neighbors(n.id) {
                prop_assert!(topo.neighbors(m).contains(&n.id));
                prop_assert!(topo.pos(n.id).dist(topo.pos(m)) <= rr + 1e-9);
            }
        }
    }
}
