//! A miniature of the paper's Figure 15: delivery failures as the network
//! gets sparser, comparing the protocols' void handling.
//!
//! LGS has no recovery and fails first; PBM sends voids straight into
//! perimeter mode; GMP first tries to group void destinations with
//! others (Figure 10) and recovers best.
//!
//! ```sh
//! cargo run --release --example density_failures
//! ```

use gmp::baselines::{LgsRouter, PbmRouter};
use gmp::gmp::GmpRouter;
use gmp::net::Topology;
use gmp::sim::{MulticastTask, Protocol, SimConfig, TaskRunner};

fn main() {
    println!(
        "{:>6} {:>8} {:>8} {:>8}   (failed tasks out of 60, k = 12, hop cap 100)",
        "nodes", "LGS", "PBM", "GMP"
    );
    for nodes in [120usize, 160, 200, 300, 400] {
        let config = SimConfig::paper()
            .with_node_count(nodes)
            .with_max_path_hops(100);
        let mut failures = [0usize; 3];
        for net in 0..2u64 {
            let topo = Topology::random(&config.topology_config(), 500 + net);
            let runner = TaskRunner::new(&topo, &config);
            for t in 0..30u64 {
                let task = MulticastTask::random(&topo, 12, net * 1000 + t);
                let mut protos: [Box<dyn Protocol>; 3] = [
                    Box::new(LgsRouter::new()),
                    Box::new(PbmRouter::with_lambda(0.3)),
                    Box::new(GmpRouter::new()),
                ];
                for (i, p) in protos.iter_mut().enumerate() {
                    if !runner.run(p.as_mut(), &task).delivered_all() {
                        failures[i] += 1;
                    }
                }
            }
        }
        println!(
            "{:>6} {:>8} {:>8} {:>8}",
            nodes, failures[0], failures[1], failures[2]
        );
    }
    println!("\nLGS fails as soon as greedy forwarding hits a local minimum;");
    println!("GMP and PBM recover by perimeter routing on the Gabriel graph.");
}
