//! Geocasting (extension): deliver to every sensor inside a geographic
//! region the source cannot enumerate.
//!
//! The packet approaches the region with GPSR-style geographic routing
//! and floods inside it; compare the cost against naively multicasting to
//! a pre-known member list with GMP.
//!
//! ```sh
//! cargo run --release --example geocast
//! ```

use gmp::geom::{Point, Region};
use gmp::gmp::{GmpGeocast, GmpRouter};
use gmp::net::{NodeId, Topology};
use gmp::sim::geocast::{GeocastRunner, GeocastTask};
use gmp::sim::{MulticastTask, SimConfig, TaskRunner};

fn main() {
    let config = SimConfig::paper();
    let topo = Topology::random(&config.topology_config(), 77);

    let region = Region::Circle {
        center: Point::new(820.0, 780.0),
        radius: 150.0,
    };
    let source = NodeId(0);
    let task = GeocastTask {
        source,
        region: region.clone(),
    };

    let runner = GeocastRunner::new(&topo, &config);
    let report = runner.run(&mut GmpGeocast::new(), &task);
    println!(
        "geocast to a 150 m disk at (820, 780): {} members, coverage {:.0}%",
        report.members.len(),
        report.coverage() * 100.0
    );
    println!(
        "  {} transmissions, {:.3} J",
        report.transmissions, report.energy_j
    );

    // For comparison: if the source somehow knew the member list, what
    // would GMP multicast cost?
    let dests: Vec<NodeId> = report
        .members
        .iter()
        .copied()
        .filter(|&m| m != source)
        .collect();
    let mtask = MulticastTask::new(source, dests);
    let mreport = TaskRunner::new(&topo, &config).run(&mut GmpRouter::new(), &mtask);
    println!(
        "GMP multicast to the same {} nodes (member list known a priori):",
        mtask.k()
    );
    println!(
        "  {} transmissions, {:.3} J",
        mreport.transmissions, mreport.energy_j
    );
    println!(
        "\ngeocast pays {:.1}× the transmissions to avoid any membership \
         knowledge",
        report.transmissions as f64 / mreport.transmissions as f64
    );
    assert!(report.coverage() > 0.9);
}
