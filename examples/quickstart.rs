//! Quickstart: deploy a sensor network, multicast one message with GMP,
//! and read the report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gmp::gmp::GmpRouter;
use gmp::net::Topology;
use gmp::sim::{MulticastTask, SimConfig, TaskRunner};

fn main() {
    // The paper's Table 1 setup: 1000 nodes uniformly deployed over
    // 1000 m × 1000 m, 150 m radio range, 1 Mbps, 128 B messages.
    let config = SimConfig::paper();
    let topo = Topology::random(&config.topology_config(), 42);
    println!(
        "deployed {} nodes over {:.0} m × {:.0} m (avg degree {:.1}, connected: {})",
        topo.len(),
        topo.area().width(),
        topo.area().height(),
        topo.average_degree(),
        topo.is_connected()
    );

    // A random multicast task: one source, 12 destinations.
    let task = MulticastTask::random(&topo, 12, 7);
    println!(
        "multicasting from {} to {} destinations",
        task.source,
        task.k()
    );

    // Route it with GMP.
    let mut router = GmpRouter::new();
    let report = TaskRunner::new(&topo, &config).run(&mut router, &task);

    println!("\nprotocol          : {}", report.protocol);
    println!(
        "delivered         : {}/{}",
        report.delivered_count(),
        task.k()
    );
    println!("total hops        : {}", report.transmissions);
    println!(
        "per-dest hops     : {:.2} (max {})",
        report.mean_dest_hops().unwrap_or(f64::NAN),
        report.max_dest_hops().unwrap_or(0)
    );
    println!("energy            : {:.3} J", report.energy_j);
    println!(
        "completion        : {:.1} ms",
        report.completion_time_s * 1e3
    );
    println!("\nper-destination hop counts:");
    for (dest, hops) in &report.delivery_hops {
        println!("  {dest}: {hops} hops");
    }
    assert!(report.delivered_all(), "paper-density networks never fail");
}
