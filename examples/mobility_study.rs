//! Mobility study (extension): how fast does movement invalidate the
//! geographic information GMP routes on?
//!
//! Nodes follow the random-waypoint model at pedestrian speed; we compare
//! the decay of raw connectivity against the decay of GMP's *forwarding*
//! links (which favor long, range-boundary strides and therefore die
//! faster), and show that rerunning GMP on fresh snapshots keeps
//! delivering.
//!
//! ```sh
//! cargo run --release --example mobility_study
//! ```

use gmp::geom::Aabb;
use gmp::gmp::GmpRouter;
use gmp::net::mobility::{broken_link_fraction, RandomWaypoint};
use gmp::sim::{MulticastTask, SimConfig, TaskRunner};

fn main() {
    let config = SimConfig::paper().with_node_count(500);
    let mut model = RandomWaypoint::new(
        Aabb::square(1000.0),
        500,
        150.0,
        (1.0, 5.0), // pedestrian speeds
        (0.0, 2.0),
        42,
    );
    let t0 = model.snapshot();
    println!(
        "t = 0 s: {} nodes, avg degree {:.1}",
        t0.len(),
        t0.average_degree()
    );

    // Routes computed on the t = 0 snapshot.
    let runner0 = TaskRunner::new(&t0, &config);
    let mut links = Vec::new();
    for t in 0..25u64 {
        let task = MulticastTask::random(&t0, 12, t + 1);
        links.extend(runner0.run(&mut GmpRouter::new(), &task).links);
    }

    println!(
        "\n{:>8} {:>14} {:>20} {:>22}",
        "age (s)", "broken links", "broken GMP strides", "fresh-snapshot delivery"
    );
    let mut elapsed = 0.0;
    for &age in &[1.0f64, 2.0, 5.0, 10.0, 20.0, 60.0] {
        model.advance(age - elapsed);
        elapsed = age;
        let fresh = model.snapshot();
        let broken = broken_link_fraction(&t0, &fresh);
        let stale = links
            .iter()
            .filter(|&&(from, to)| !fresh.neighbors(from).contains(&to))
            .count() as f64
            / links.len() as f64;
        // Rerouting on the fresh snapshot still works.
        let delivered = if fresh.is_connected() {
            let task = MulticastTask::random(&fresh, 12, 999);
            let report = TaskRunner::new(&fresh, &config).run(&mut GmpRouter::new(), &task);
            format!("{}/{}", report.delivered_count(), task.k())
        } else {
            "(disconnected)".to_string()
        };
        println!(
            "{:>8.0} {:>13.1}% {:>19.1}% {:>22}",
            age,
            broken * 100.0,
            stale * 100.0,
            delivered
        );
    }
    println!(
        "\nGMP's strides break ~2× faster than average links: geographic \
         forwarding needs position beacons well under the link half-life."
    );
}
