//! Perimeter-mode recovery around a routing void (Section 4.1), with an
//! SVG rendering of the realized multicast route.
//!
//! A circular hole is carved out of the deployment; the multicast must
//! detour around it. The example prints what happened and writes
//! `results/void_routing.svg` showing nodes, the hole, and every transmission.
//!
//! ```sh
//! cargo run --release --example void_routing
//! ```

use gmp::geom::Point;
use gmp::gmp::GmpRouter;
use gmp::net::topology::{Hole, Topology, TopologyConfig};
use gmp::sim::{MulticastTask, SimConfig, TaskRunner};
use gmp::viz::SvgScene;

fn main() {
    let hole = Hole::Circle {
        center: Point::new(400.0, 400.0),
        radius: 220.0,
    };
    let tconfig = TopologyConfig::new(800.0, 500, 150.0).with_hole(hole);
    let topo = Topology::random(&tconfig, 4);
    let config = SimConfig::paper()
        .with_area_side(800.0)
        .with_node_count(500);
    println!(
        "deployed {} nodes around a 220 m void (connected: {})",
        topo.len(),
        topo.is_connected()
    );

    // Source on the west edge, destinations on the far side of the hole.
    let near = |p: Point| {
        topo.nodes()
            .min_by(|a, b| a.pos.dist_sq(p).total_cmp(&b.pos.dist_sq(p)))
            .expect("non-empty topology")
            .id
    };
    let source = near(Point::new(40.0, 400.0));
    let mut dests = vec![
        near(Point::new(760.0, 380.0)),
        near(Point::new(720.0, 640.0)),
        near(Point::new(700.0, 160.0)),
    ];
    dests.sort();
    dests.dedup();
    dests.retain(|&d| d != source);
    let task = MulticastTask::new(source, dests.clone());

    let mut router = GmpRouter::new();
    let report = TaskRunner::new(&topo, &config).run(&mut router, &task);
    println!(
        "GMP delivered {}/{} destinations in {} transmissions \
         ({} dropped copies)",
        report.delivered_count(),
        task.k(),
        report.transmissions,
        report.dropped_packets
    );
    for (dest, hops) in &report.delivery_hops {
        println!("  {dest} reached after {hops} hops");
    }

    // Render the route.
    let mut scene = SvgScene::new(topo.area());
    if let Hole::Circle { center, radius } = hole {
        scene.ring(center, radius, "#cc8888");
    }
    for node in topo.nodes() {
        scene.circle(node.pos, 2.0, "#bbbbbb");
    }
    for &(from, to) in &report.links {
        scene.line(topo.pos(from), topo.pos(to), "#3366cc", 1.5);
    }
    scene.circle(topo.pos(source), 6.0, "#118811");
    scene.label(topo.pos(source), "src", "#118811");
    for &d in &dests {
        scene.circle(topo.pos(d), 6.0, "#cc3311");
    }
    let path = "results/void_routing.svg";
    std::fs::write(path, scene.finish()).expect("write svg");
    println!("\nwrote {path} — blue edges are transmissions detouring the void");
    assert!(report.delivered_all());
}
