//! Visualizes rrSTR's virtual Euclidean Steiner tree next to LGS's MST on
//! the paper's Figure 1/4 scenario, and prints the length comparison.
//!
//! Writes `results/steiner_trees.svg` with the rrSTR tree (dashed blue, virtual
//! junctions as hollow squares) and the MST (solid gray).
//!
//! ```sh
//! cargo run --release --example steiner_trees
//! ```

use gmp::geom::{Aabb, Point};
use gmp::steiner::mst::euclidean_mst;
use gmp::steiner::rrstr::{rrstr, RadioRange};
use gmp::steiner::tree::VertexKind;
use gmp::viz::SvgScene;

fn main() {
    // The Figure 4 cast: destinations u, v far away and close together,
    // d below them, c on the way.
    let s = Point::new(80.0, 300.0);
    let dests = vec![
        Point::new(420.0, 240.0), // c
        Point::new(900.0, 380.0), // u
        Point::new(900.0, 220.0), // v
        Point::new(720.0, 100.0), // d
    ];
    let labels = ["c", "u", "v", "d"];

    let tree = rrstr(s, &dests, RadioRange::Aware(150.0));
    let mut mst_points = vec![s];
    mst_points.extend_from_slice(&dests);
    let mst = euclidean_mst(&mst_points);

    println!("rrSTR tree length : {:.1} m", tree.total_length());
    println!("MST length        : {:.1} m", mst.total_length);
    println!(
        "virtual junctions : {}",
        tree.vertex_ids().filter(|&v| tree.is_virtual(v)).count()
    );
    println!("\nrrSTR edges (parent → child):");
    for (p, c) in tree.edges() {
        let name = |v: usize| match tree.kind(v) {
            VertexKind::Root => "s".to_string(),
            VertexKind::Terminal(i) => labels[i].to_string(),
            VertexKind::Virtual => format!("w@{}", tree.pos(v)),
        };
        println!("  {} → {}", name(p), name(c));
    }

    // Side-by-side SVG.
    let bounds = Aabb::new(Point::new(0.0, 0.0), Point::new(1000.0, 500.0));
    let mut scene = SvgScene::new(bounds);
    // MST in gray (solid).
    for (i, parent) in mst.parent.iter().enumerate() {
        if let Some(p) = parent {
            scene.line(mst_points[i], mst_points[*p], "#999999", 1.0);
        }
    }
    // rrSTR in blue (dashed, like the paper's figures).
    for (p, c) in tree.edges() {
        scene.dashed_line(tree.pos(p), tree.pos(c), "#3366cc", 1.5);
    }
    for v in tree.vertex_ids() {
        match tree.kind(v) {
            VertexKind::Root => {
                scene.circle(tree.pos(v), 6.0, "#118811");
                scene.label(tree.pos(v), "s", "#118811");
            }
            VertexKind::Terminal(i) => {
                scene.circle(tree.pos(v), 5.0, "#cc3311");
                scene.label(tree.pos(v), labels[i], "#cc3311");
            }
            VertexKind::Virtual => {
                scene.ring(tree.pos(v), 6.0, "#3366cc");
            }
        }
    }
    let path = "results/steiner_trees.svg";
    std::fs::write(path, scene.finish()).expect("write svg");
    println!("\nwrote {path} — dashed blue: rrSTR (hollow = virtual), gray: MST");
}
