//! Dynamic group membership (extension): members join and leave over
//! time; the prime node maintains the group and multicasts to the
//! current snapshot with GMP.
//!
//! Control messages (JOIN/LEAVE) travel to the prime node over the real
//! topology and are charged hops and energy like data packets, so the
//! example shows the full cost of a dynamic multicast session.
//!
//! ```sh
//! cargo run --release --example group_management
//! ```

use gmp::gmp::GmpRouter;
use gmp::groups::{GroupId, GroupManager, MembershipTrace};
use gmp::net::{NodeId, Topology};
use gmp::sim::{SimConfig, TaskRunner};

fn main() {
    let config = SimConfig::paper().with_node_count(600);
    let topo = Topology::random(&config.topology_config(), 9);
    let prime = NodeId(0);
    let group = GroupId(1);

    // 15 initial members, then 40 churn events, in 5 batches with one
    // multicast dissemination after each batch.
    let trace = MembershipTrace::random(&topo, group, prime, 15, 40, 123);
    let mut mgr = GroupManager::new(&topo, &config, prime);
    let runner = TaskRunner::new(&topo, &config);
    let mut router = GmpRouter::new();

    let mut data_tx = 0usize;
    let mut data_energy = 0.0f64;
    let batch = trace.updates.len().div_ceil(5);
    println!(
        "{:>6} {:>9} {:>12} {:>12}",
        "batch", "members", "data hops", "delivered"
    );
    for (i, chunk) in trace.updates.chunks(batch).enumerate() {
        for &u in chunk {
            mgr.apply(u);
        }
        if let Some(task) = mgr.task_for(group) {
            let report = runner.run(&mut router, &task);
            data_tx += report.transmissions;
            data_energy += report.energy_j;
            println!(
                "{:>6} {:>9} {:>12} {:>11}/{}",
                i + 1,
                task.k(),
                report.transmissions,
                report.delivered_count(),
                task.k()
            );
            assert!(report.delivered_all());
        }
    }

    let control = mgr.control_cost();
    println!("\nsession totals:");
    println!(
        "  control plane: {} transmissions, {:.3} J ({} undeliverable)",
        control.transmissions, control.energy_j, control.undeliverable
    );
    println!("  data plane   : {data_tx} transmissions, {data_energy:.3} J");
    println!(
        "  control overhead: {:.0}% of data transmissions",
        100.0 * control.transmissions as f64 / data_tx as f64
    );
}
