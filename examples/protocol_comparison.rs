//! Head-to-head comparison of every protocol on identical tasks — a
//! one-network miniature of the paper's Figures 11/12/14.
//!
//! ```sh
//! cargo run --release --example protocol_comparison
//! ```

use gmp::baselines::{DsmRouter, GrdRouter, LgkRouter, LgsRouter, PbmRouter, SmtRouter};
use gmp::gmp::GmpRouter;
use gmp::net::Topology;
use gmp::sim::{MulticastTask, Protocol, SimConfig, TaskRunner};

fn main() {
    let config = SimConfig::paper();
    let topo = Topology::random(&config.topology_config(), 11);
    let runner = TaskRunner::new(&topo, &config);

    let tasks: Vec<MulticastTask> = (0..20)
        .map(|t| MulticastTask::random(&topo, 12, 100 + t))
        .collect();

    let mut protocols: Vec<Box<dyn Protocol>> = vec![
        Box::new(GmpRouter::new()),
        Box::new(GmpRouter::without_radio_range_awareness()),
        Box::new(PbmRouter::with_lambda(0.3)),
        Box::new(LgsRouter::new()),
        Box::new(LgkRouter::new(2)),
        Box::new(DsmRouter::new()),
        Box::new(SmtRouter::new()),
        Box::new(GrdRouter::new()),
    ];

    println!(
        "{:<12} {:>12} {:>14} {:>12} {:>10}",
        "protocol", "total hops", "per-dest hops", "energy (J)", "failures"
    );
    println!("{}", "-".repeat(64));
    for proto in protocols.iter_mut() {
        let mut hops = 0usize;
        let mut dest_hops = 0.0;
        let mut energy = 0.0;
        let mut failures = 0usize;
        for task in &tasks {
            let report = runner.run(proto.as_mut(), task);
            hops += report.transmissions;
            dest_hops += report.mean_dest_hops().unwrap_or(0.0);
            energy += report.energy_j;
            if !report.delivered_all() {
                failures += 1;
            }
        }
        let n = tasks.len() as f64;
        println!(
            "{:<12} {:>12.2} {:>14.2} {:>12.3} {:>10}",
            proto.name(),
            hops as f64 / n,
            dest_hops / n,
            energy / n,
            failures
        );
    }
    println!(
        "\n(12 destinations, {} tasks, one {}-node network — run the \
         `experiments` binary for the full multi-network sweeps)",
        tasks.len(),
        topo.len()
    );
}
